//! The differential conformance harness: run the **whole** pipeline on a
//! generated scenario and check cross-layer invariants that must hold for
//! *every* program, not just the six hand-modeled case studies.
//!
//! Corpus-level invariants (also replayable against persisted corpora):
//!
//! 1. **codec identity** — encode → decode → encode round-trips
//!    byte-for-byte;
//! 2. **framing independence** — the `aid_store::StreamDecoder` fed the
//!    same bytes under any chunking produces the same traces with an empty
//!    quarantine;
//! 3. **columnar losslessness** — `ColumnStore` re-materializes the corpus
//!    byte-identically;
//! 4. **incremental ≡ batch** — the store's incrementally maintained
//!    analysis is structurally identical to `aid_core::analyze` recomputed
//!    from scratch at every prefix.
//!
//! Scenario-level invariants (need the program, not just its traces):
//!
//! 5. **schedule independence** — serial `SimExecutor` discovery, a
//!    1-worker engine session, an N-worker engine session, and a repeated
//!    (cache-served) session all return the same `DiscoveryResult`;
//! 6. **memoization** — the repeated session executes nothing new;
//! 7. **lineage** — no confirmed-causal predicate touches a ground-truth
//!    noise method (interventional pruning must reject causally unrelated
//!    predicates);
//! 8. **backend equivalence** (with [`BackendMode::Both`], the default) —
//!    the tree-walk and bytecode execution backends report the same
//!    simulator fingerprint, produce byte-identical traces on sampled
//!    seeds under both the empty plan and an analysis-derived intervention
//!    plan, and serial discovery over either backend returns the same
//!    `DiscoveryResult`;
//! 9. **streaming equivalence** — an `aid_watch::Watcher` fed the corpus
//!    as chunked byte tails converges to the same `DiscoveryResult` as
//!    one-shot discovery over the full corpus, and stat-neutral appends
//!    after convergence execute zero new interventions (the standing
//!    query's delta rule plus the engine's intervention cache).
//!
//! Root-cause *accuracy* (root found, expected kind, mechanism hit) is
//! reported as metrics rather than hard invariants: discovery quality is
//! graded in aggregate by the driver, while the invariants above must hold
//! scenario by scenario.

use crate::gen::{BugClass, LabParams, Scenario};
use aid_core::{analyze, discover, AidAnalysis, DiscoveryResult, Strategy};
use aid_engine::{DiscoveryJob, Engine, EngineConfig};
use aid_predicates::{ExtractionConfig, PredicateCatalog, PredicateId, PredicateKind};
use aid_sim::{plan_for, Backend, InterventionPlan, SimExecutor, Simulator};
use aid_store::{StoreConfig, StreamDecoder, TraceStore};
use aid_trace::{codec, MethodId, Outcome, Trace, TraceSet};
use aid_watch::{WatchConfig, Watcher};
use std::sync::Arc;

/// First seed for intervention runs (disjoint from observation seeds).
const INTERVENTION_SEED: u64 = 1_000_000;

/// Which execution backend(s) the harness drives the pipeline on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendMode {
    /// Everything on the tree-walk interpreter.
    TreeWalk,
    /// Everything on the bytecode VM.
    Bytecode,
    /// Run the pipeline on the session default and additionally check
    /// invariant 8 (tree-walk ≡ bytecode) on every scenario.
    Both,
}

impl BackendMode {
    /// The backend the main pipeline (corpus, discovery, engines) uses.
    pub fn primary(self) -> Backend {
        match self {
            BackendMode::TreeWalk => Backend::TreeWalk,
            BackendMode::Bytecode => Backend::Bytecode,
            BackendMode::Both => Backend::default(),
        }
    }

    /// Parses a mode name (`tree`, `bytecode`, `both`).
    pub fn parse(s: &str) -> Option<BackendMode> {
        if s == "both" {
            return Some(BackendMode::Both);
        }
        Backend::parse(s).map(|b| match b {
            Backend::TreeWalk => BackendMode::TreeWalk,
            Backend::Bytecode => BackendMode::Bytecode,
        })
    }
}

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct Conformance {
    /// Generator sizing (also the corpus balance the harness collects).
    pub params: LabParams,
    /// Worker count of the "many workers" engine of invariant 5.
    pub workers: usize,
    /// Check every `stride`-th prefix in invariant 4 (the final prefix is
    /// always checked); 1 = every prefix.
    pub prefix_stride: usize,
    /// Tie-breaking seed passed to the discovery algorithms.
    pub discovery_seed: u64,
    /// Execution backend(s); [`BackendMode::Both`] also enables the
    /// backend-equivalence invariant (8).
    pub backend: BackendMode,
    /// Also check invariant 9 (streamed-tail discovery ≡ one-shot): a
    /// standing `aid_watch::Watcher` fed the corpus as byte tails must
    /// converge to the serial reference result, and stat-neutral appends
    /// after convergence must execute zero new interventions.
    pub streaming: bool,
}

impl Default for Conformance {
    fn default() -> Self {
        Conformance {
            params: LabParams::default(),
            workers: 4,
            prefix_stride: 1,
            discovery_seed: 11,
            backend: BackendMode::Both,
            streaming: true,
        }
    }
}

/// One invariant violation, with enough detail to reproduce.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Scenario (or corpus entry) name.
    pub scenario: String,
    /// Which invariant broke.
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.scenario, self.invariant, self.detail)
    }
}

/// The outcome of one scenario's conformance run.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name (`"<class>-s<seed>"`).
    pub name: String,
    /// Its bug class.
    pub bug_class: BugClass,
    /// Corpus size actually checked.
    pub traces: usize,
    /// Predicates extracted from the corpus.
    pub predicates: usize,
    /// Safely intervenable AC-DAG candidates.
    pub candidates: usize,
    /// Intervention rounds AID used (serial reference run).
    pub aid_rounds: usize,
    /// Whether discovery confirmed any root cause.
    pub root_found: bool,
    /// Whether the root's kind matches the template's expectation.
    pub root_kind_match: bool,
    /// Whether the root touches only ground-truth mechanism methods.
    pub root_on_mechanism: bool,
    /// Invariant violations (empty = conformant).
    pub violations: Vec<Violation>,
}

/// The static methods a predicate's truth depends on (used to test lineage
/// membership). Conjunctions recurse through the catalog.
pub fn predicate_methods(catalog: &PredicateCatalog, id: PredicateId) -> Vec<MethodId> {
    match &catalog.get(id).kind {
        PredicateKind::DataRace { a, b, .. } => vec![a.method, b.method],
        PredicateKind::MethodFails { site, .. }
        | PredicateKind::RunsTooSlow { site, .. }
        | PredicateKind::RunsTooFast { site, .. }
        | PredicateKind::WrongReturn { site, .. } => vec![site.method],
        PredicateKind::OrderViolation { first, second, .. } => vec![first.method, second.method],
        PredicateKind::ValueCollision { a, b } => vec![a.method, b.method],
        PredicateKind::Conjunction { lhs, rhs } => {
            let mut v = predicate_methods(catalog, *lhs);
            v.extend(predicate_methods(catalog, *rhs));
            v
        }
        PredicateKind::Failure { signature } => vec![signature.method],
    }
}

/// Structural equality of two analyses (the store equivalence contract),
/// returning the first mismatch instead of panicking.
pub fn compare_analysis(incremental: &AidAnalysis, batch: &AidAnalysis) -> Result<(), String> {
    if incremental.extraction.catalog.len() != batch.extraction.catalog.len() {
        return Err(format!(
            "catalog size {} != {}",
            incremental.extraction.catalog.len(),
            batch.extraction.catalog.len()
        ));
    }
    for ((ia, pa), (ib, pb)) in incremental
        .extraction
        .catalog
        .iter()
        .zip(batch.extraction.catalog.iter())
    {
        if ia != ib || pa != pb {
            return Err(format!("predicate {ia:?} differs: {pa:?} vs {pb:?}"));
        }
    }
    if incremental.extraction.failure != batch.extraction.failure {
        return Err("failure indicator differs".into());
    }
    if incremental.extraction.signature != batch.extraction.signature {
        return Err("failure signature differs".into());
    }
    if incremental.extraction.observations != batch.extraction.observations {
        return Err("per-run observations differ".into());
    }
    if incremental.sd.scores != batch.sd.scores {
        return Err("SD scores differ".into());
    }
    if incremental.sd.discriminative != batch.sd.discriminative {
        return Err("discriminative sets differ".into());
    }
    if incremental.sd.fully_discriminative != batch.sd.fully_discriminative {
        return Err("fully-discriminative sets differ".into());
    }
    if incremental.candidates != batch.candidates {
        return Err(format!(
            "candidates differ: {:?} vs {:?}",
            incremental.candidates, batch.candidates
        ));
    }
    if incremental.dag != batch.dag {
        return Err("AC-DAG differs".into());
    }
    Ok(())
}

/// Runs the corpus-level invariants (1–4) on a labeled trace set. Used both
/// on freshly generated scenarios and to replay persisted regression
/// corpora.
pub fn corpus_violations(
    name: &str,
    set: &TraceSet,
    config: &ExtractionConfig,
    prefix_stride: usize,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut violate = |invariant: &'static str, detail: String| {
        out.push(Violation {
            scenario: name.to_string(),
            invariant,
            detail,
        });
    };
    let text = codec::encode(set);

    // (1) codec identity, byte for byte.
    let mut decodable = false;
    match codec::decode(&text) {
        Ok(back) => {
            decodable = true;
            if back.traces != set.traces {
                violate("codec-identity", "decoded traces differ".into());
            }
            let re = codec::encode(&back);
            if re != text {
                violate(
                    "codec-identity",
                    format!("re-encode differs ({} vs {} bytes)", re.len(), text.len()),
                );
            }
        }
        Err(e) => violate("codec-identity", format!("decode failed: {e}")),
    }

    // (2) framing independence: any chunking yields the same decode.
    let salt = set.traces.first().map_or(0, |t| t.seed);
    for chunk in [1usize, 7, 97, 1021, 13 + (salt as usize % 241)] {
        let mut dec = StreamDecoder::new();
        for piece in text.as_bytes().chunks(chunk) {
            dec.push_bytes(piece);
        }
        dec.finish();
        let traces = dec.drain();
        if !dec.quarantine().is_empty() {
            violate(
                "framing-independence",
                format!(
                    "chunk size {chunk}: {} records quarantined: {}",
                    dec.quarantine().len(),
                    dec.quarantine()[0].error
                ),
            );
        } else if traces != set.traces {
            violate(
                "framing-independence",
                format!("chunk size {chunk}: decoded traces differ"),
            );
        }
    }

    // Invariants 3 and 4 are defined on decodable corpora only: a set that
    // already failed (1) (e.g. a deliberately poisoned shrink reproducer)
    // references ids the columnar arenas cannot resolve.
    if !decodable {
        return out;
    }

    // (3) columnar losslessness.
    let mut store = TraceStore::new(StoreConfig {
        shards: 3,
        extraction: config.clone(),
        ..StoreConfig::default()
    });
    store.append_set(set);
    let re = codec::encode(&store.to_trace_set());
    if re != text {
        violate(
            "columnar-roundtrip",
            format!(
                "column re-encode differs ({} vs {} bytes)",
                re.len(),
                text.len()
            ),
        );
    }

    // (4) incremental ≡ batch at every checked prefix.
    let stride = prefix_stride.max(1);
    let mut store = TraceStore::new(StoreConfig {
        shards: 3,
        extraction: config.clone(),
        ..StoreConfig::default()
    });
    let mut failures_seen = 0usize;
    for k in 0..set.traces.len() {
        store.append_run(set, set.traces[k].clone());
        if set.traces[k].failed() {
            failures_seen += 1;
        }
        let last = k + 1 == set.traces.len();
        if !last && (k + 1) % stride != 0 {
            continue;
        }
        let analysis = store.refresh();
        if failures_seen == 0 {
            if analysis.is_some() {
                violate(
                    "incremental-equivalence",
                    format!("prefix {}: analysis published before any failure", k + 1),
                );
            }
            continue;
        }
        let Some(analysis) = analysis else {
            violate(
                "incremental-equivalence",
                format!(
                    "prefix {}: no analysis despite {failures_seen} failures",
                    k + 1
                ),
            );
            continue;
        };
        let prefix = TraceSet {
            methods: set.methods.clone(),
            objects: set.objects.clone(),
            channels: set.channels.clone(),
            traces: set.traces[..=k].to_vec(),
        };
        let batch = analyze(&prefix, config);
        if let Err(e) = compare_analysis(analysis, &batch) {
            violate("incremental-equivalence", format!("prefix {}: {e}", k + 1));
        }
    }
    out
}

fn discovery_job(
    name: &str,
    scenario: &Scenario,
    sim: &Arc<Simulator>,
    analysis: &AidAnalysis,
    seed: u64,
) -> DiscoveryJob {
    DiscoveryJob::sim(
        name,
        Arc::new(analysis.dag.clone()),
        Arc::clone(sim),
        Arc::new(analysis.extraction.catalog.clone()),
        analysis.extraction.failure,
        scenario.runs_per_round,
        INTERVENTION_SEED,
        Strategy::Aid,
        seed,
    )
}

/// Runs the full conformance suite (invariants 1–7 plus accuracy metrics)
/// on one scenario, collecting its corpus first. Callers that already hold
/// the validated corpus (e.g. from [`crate::gen::generate_validated`])
/// should use [`check_scenario_on`] — collection dominates the
/// per-scenario cost, so re-collecting doubles it.
pub fn check_scenario(scenario: &Scenario, conf: &Conformance) -> ScenarioReport {
    match scenario.collect(&conf.params) {
        Some(set) => check_scenario_on(scenario, &set, conf),
        None => ScenarioReport {
            name: scenario.name.clone(),
            bug_class: scenario.spec.bug_class,
            traces: 0,
            predicates: 0,
            candidates: 0,
            aid_rounds: 0,
            root_found: false,
            root_kind_match: false,
            root_on_mechanism: false,
            violations: vec![Violation {
                scenario: scenario.name.clone(),
                invariant: "corpus-balance",
                detail: format!(
                    "failed to collect {}/{} balanced runs in {} seeds",
                    conf.params.corpus_ok, conf.params.corpus_fail, conf.params.max_seeds
                ),
            }],
        },
    }
}

/// [`check_scenario`] over an already-collected corpus.
pub fn check_scenario_on(
    scenario: &Scenario,
    set: &TraceSet,
    conf: &Conformance,
) -> ScenarioReport {
    let mut report = ScenarioReport {
        name: scenario.name.clone(),
        bug_class: scenario.spec.bug_class,
        traces: set.traces.len(),
        predicates: 0,
        candidates: 0,
        aid_rounds: 0,
        root_found: false,
        root_kind_match: false,
        root_on_mechanism: false,
        violations: Vec::new(),
    };

    // Corpus-level invariants (1–4).
    report.violations.extend(corpus_violations(
        &scenario.name,
        set,
        &scenario.config,
        conf.prefix_stride,
    ));

    // Observation phase + serial reference discovery.
    let analysis = analyze(set, &scenario.config);
    report.predicates = analysis.extraction.catalog.len();
    report.candidates = analysis.candidates.len();
    let primary = conf.backend.primary();
    let sim = Arc::new(scenario.simulator_with(primary));
    let mut serial_exec = SimExecutor::new(
        scenario.simulator_with(primary),
        analysis.extraction.catalog.clone(),
        analysis.extraction.failure,
        scenario.runs_per_round,
        INTERVENTION_SEED,
    );
    let serial = discover(
        &analysis.dag,
        &mut serial_exec,
        Strategy::Aid,
        conf.discovery_seed,
    );
    report.aid_rounds = serial.rounds;

    // (8) backend equivalence: fingerprints, traces, and discovery must be
    // independent of the execution backend.
    if conf.backend == BackendMode::Both {
        let tree = scenario.simulator_with(Backend::TreeWalk);
        let byte = scenario.simulator_with(Backend::Bytecode);
        if tree.fingerprint() != byte.fingerprint() {
            report.violations.push(Violation {
                scenario: scenario.name.clone(),
                invariant: "backend-equivalence",
                detail: format!(
                    "fingerprints diverge: tree {:#x} vs bytecode {:#x}",
                    tree.fingerprint(),
                    byte.fingerprint()
                ),
            });
        }
        // Byte-identical traces under the empty plan and under a real
        // intervention plan lowered from the scenario's own analysis.
        let mut plans = vec![("empty plan", InterventionPlan::empty())];
        if let Some(&candidate) = analysis.candidates.first() {
            plans.push((
                "candidate plan",
                plan_for(&analysis.extraction.catalog, &[candidate]),
            ));
        }
        for (label, plan) in &plans {
            for seed in (0..4).chain(INTERVENTION_SEED..INTERVENTION_SEED + 4) {
                let a = tree.run(seed, plan);
                let b = byte.run(seed, plan);
                if a != b {
                    report.violations.push(Violation {
                        scenario: scenario.name.clone(),
                        invariant: "backend-equivalence",
                        detail: format!("{label}, seed {seed}: traces diverge"),
                    });
                    break;
                }
            }
        }
        // Same serial discovery result on the backend the main run did
        // *not* use.
        let other = match primary {
            Backend::TreeWalk => Backend::Bytecode,
            Backend::Bytecode => Backend::TreeWalk,
        };
        let mut other_exec = SimExecutor::new(
            scenario.simulator_with(other),
            analysis.extraction.catalog.clone(),
            analysis.extraction.failure,
            scenario.runs_per_round,
            INTERVENTION_SEED,
        );
        let cross = discover(
            &analysis.dag,
            &mut other_exec,
            Strategy::Aid,
            conf.discovery_seed,
        );
        if cross != serial {
            report.violations.push(Violation {
                scenario: scenario.name.clone(),
                invariant: "backend-equivalence",
                detail: format!(
                    "discovery on {} differs from {}: causal {:?} vs {:?}",
                    other.name(),
                    primary.name(),
                    cross.causal,
                    serial.causal
                ),
            });
        }
    }

    // (5) + (6): engine parity across worker counts, and against the cache.
    let parity = |result: &DiscoveryResult, label: &str, report: &mut ScenarioReport| {
        if result != &serial {
            report.violations.push(Violation {
                scenario: scenario.name.clone(),
                invariant: "schedule-independence",
                detail: format!(
                    "{label} differs from serial: causal {:?} vs {:?}, rounds {} vs {}",
                    result.causal, serial.causal, result.rounds, serial.rounds
                ),
            });
        }
    };
    let single = Engine::with_workers(1);
    let r1 = single
        .run_all(vec![discovery_job(
            "single",
            scenario,
            &sim,
            &analysis,
            conf.discovery_seed,
        )])
        .remove(0);
    parity(&r1.result, "1-worker engine", &mut report);
    drop(single);

    let multi = Engine::new(EngineConfig {
        workers: conf.workers.max(2),
        ..EngineConfig::default()
    });
    let rn = multi
        .run_all(vec![discovery_job(
            "multi",
            scenario,
            &sim,
            &analysis,
            conf.discovery_seed,
        )])
        .remove(0);
    parity(&rn.result, "N-worker engine", &mut report);
    let before = multi.stats();
    let repeat = multi
        .run_all(vec![discovery_job(
            "repeat",
            scenario,
            &sim,
            &analysis,
            conf.discovery_seed,
        )])
        .remove(0);
    parity(&repeat.result, "cache-served repeat session", &mut report);
    let after = multi.stats();
    if after.executions != before.executions {
        report.violations.push(Violation {
            scenario: scenario.name.clone(),
            invariant: "memoization",
            detail: format!(
                "repeat session re-executed {} runs",
                after.executions - before.executions
            ),
        });
    }
    // (9) streaming equivalence: a standing query fed the corpus as byte
    // tails converges to the serial reference result, and post-convergence
    // stat-neutral appends cost zero interventions. The watcher shares the
    // N-worker engine, so its final (full-corpus) re-probe is answered by
    // the interventions the one-shot sessions already cached.
    if conf.streaming {
        let mut watcher = Watcher::new(
            WatchConfig {
                store: StoreConfig {
                    shards: 3,
                    extraction: scenario.config.clone(),
                    ..StoreConfig::default()
                },
                strategy: Strategy::Aid,
                discovery_seed: conf.discovery_seed,
                runs_per_round: scenario.runs_per_round,
                first_seed: INTERVENTION_SEED,
                prune_quorum: 1,
                max_probe_runs: None,
                name: format!("{}-watch", scenario.name),
            },
            Arc::clone(&sim),
            multi.handle(),
        );
        let violate = |invariant: &'static str, detail: String, report: &mut ScenarioReport| {
            report.violations.push(Violation {
                scenario: scenario.name.clone(),
                invariant,
                detail,
            });
        };
        let text = codec::encode(set);
        let bytes = text.as_bytes();
        let mid = bytes.len() / 2;
        watcher.push_bytes(&bytes[..mid]);
        let mut stream_ok = true;
        if let Err(e) = watcher.tick() {
            violate(
                "streaming-equivalence",
                format!("mid-stream tick: {e}"),
                &mut report,
            );
            stream_ok = false;
        }
        watcher.push_bytes(&bytes[mid..]);
        watcher.finish_tail();
        if stream_ok {
            match watcher.tick() {
                Ok(_) => match watcher.converged() {
                    Some(result) if result == &serial => {
                        // Post-convergence economy: replaying a successful
                        // run already in the corpus moves nothing — site
                        // stability, duration envelopes, unique returns,
                        // and every candidate's counts are all preserved —
                        // so the watcher must republish without touching
                        // the engine. (An *empty* success would not do: it
                        // breaks every site's present-in-all-successes
                        // stability and with it the timing/order predicate
                        // families.)
                        let replay: Vec<Trace> = set
                            .traces
                            .iter()
                            .find(|t| matches!(t.outcome, Outcome::Success))
                            .cloned()
                            .into_iter()
                            .collect();
                        let neutral = TraceSet {
                            methods: set.methods.clone(),
                            objects: set.objects.clone(),
                            channels: set.channels.clone(),
                            traces: replay,
                        };
                        let before = multi.stats().executions;
                        watcher.append_set(&neutral);
                        match watcher.tick() {
                            Ok(_) => {
                                let delta = multi.stats().executions - before;
                                if delta != 0 {
                                    violate(
                                        "streaming-economy",
                                        format!("stat-neutral append executed {delta} new runs"),
                                        &mut report,
                                    );
                                }
                            }
                            Err(e) => violate(
                                "streaming-economy",
                                format!("post-convergence tick: {e}"),
                                &mut report,
                            ),
                        }
                    }
                    Some(result) => violate(
                        "streaming-equivalence",
                        format!(
                            "streamed convergence differs from serial: causal {:?} vs {:?}",
                            result.causal, serial.causal
                        ),
                        &mut report,
                    ),
                    None => violate(
                        "streaming-equivalence",
                        "watcher never converged over the full corpus".into(),
                        &mut report,
                    ),
                },
                Err(e) => violate(
                    "streaming-equivalence",
                    format!("final tick: {e}"),
                    &mut report,
                ),
            }
        }
    }
    drop(multi);

    // (7) lineage: confirmed causal predicates never touch noise methods.
    for &p in &serial.causal {
        let methods = predicate_methods(&analysis.extraction.catalog, p);
        if let Some(bad) = methods.iter().find(|m| !scenario.on_lineage(**m)) {
            report.violations.push(Violation {
                scenario: scenario.name.clone(),
                invariant: "lineage",
                detail: format!(
                    "causal predicate '{}' touches noise method {}",
                    analysis.extraction.catalog.describe(p, set),
                    set.method_name(*bad),
                ),
            });
        }
    }

    // Accuracy metrics.
    if let Some(root) = serial.root_cause() {
        report.root_found = true;
        report.root_kind_match = scenario
            .expected_root
            .matches(&analysis.extraction.catalog.get(root).kind);
        report.root_on_mechanism = predicate_methods(&analysis.extraction.catalog, root)
            .iter()
            .all(|m| scenario.mechanism.contains(m));
    }
    report
}
