//! Statistical debugging (SD) over predicate observations.
//!
//! Given per-run predicate truth values, SD scores every predicate by
//! precision and recall (Section 2):
//!
//! ```text
//! precision(P) = #failed runs where P holds / #runs where P holds
//! recall(P)    = #failed runs where P holds / #failed runs
//! ```
//!
//! AID consumes only the **fully-discriminative** predicates (precision =
//! recall = 100%): those that hold in *every* failed run and *no* successful
//! run. This module also produces the ranked list a plain-SD tool would
//! show a developer — the baseline AID's case studies compare against
//! (Figure 7 column 3 counts the fully-discriminative ones).

use aid_predicates::{Extraction, PredicateCatalog, PredicateId, PredicateKind, RunObservation};
use serde::{Deserialize, Serialize};

/// Scores of one predicate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredicateScore {
    /// How many runs the predicate held in.
    pub holds_in: usize,
    /// How many failed runs it held in.
    pub holds_in_failed: usize,
    /// Total failed runs.
    pub failed_runs: usize,
    /// Total runs.
    pub total_runs: usize,
}

impl PredicateScore {
    /// `#failed where P / #runs where P` (0 when P never holds).
    pub fn precision(&self) -> f64 {
        if self.holds_in == 0 {
            0.0
        } else {
            self.holds_in_failed as f64 / self.holds_in as f64
        }
    }

    /// `#failed where P / #failed` (0 when there are no failures).
    pub fn recall(&self) -> f64 {
        if self.failed_runs == 0 {
            0.0
        } else {
            self.holds_in_failed as f64 / self.failed_runs as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Holds in every failed run and in no successful run.
    pub fn fully_discriminative(&self) -> bool {
        self.failed_runs > 0
            && self.holds_in_failed == self.failed_runs
            && self.holds_in == self.holds_in_failed
    }
}

/// The SD analysis over one extraction.
#[derive(Clone, Debug)]
pub struct SdReport {
    /// Per-predicate scores, indexed by predicate id.
    pub scores: Vec<PredicateScore>,
    /// Predicates that hold in at least one failed run (any discriminative
    /// power at all).
    pub discriminative: Vec<PredicateId>,
    /// The fully-discriminative subset (AID's working set).
    pub fully_discriminative: Vec<PredicateId>,
}

impl SdReport {
    /// Scores every catalog predicate against the observations.
    pub fn analyze(catalog: &PredicateCatalog, observations: &[RunObservation]) -> SdReport {
        let total_runs = observations.len();
        let failed_runs = observations.iter().filter(|o| o.failed).count();
        let mut scores = Vec::with_capacity(catalog.len());
        for (id, _) in catalog.iter() {
            let holds_in = observations.iter().filter(|o| o.holds(id)).count();
            let holds_in_failed = observations
                .iter()
                .filter(|o| o.failed && o.holds(id))
                .count();
            scores.push(PredicateScore {
                holds_in,
                holds_in_failed,
                failed_runs,
                total_runs,
            });
        }
        Self::from_scores(scores)
    }

    /// Assembles a report from already-counted per-predicate scores (one per
    /// catalog predicate, in id order). Incremental consumers that maintain
    /// occurrence counters as runs arrive (`aid_store`) build their reports
    /// here, so the discriminative-set derivation can never drift from
    /// [`SdReport::analyze`]'s.
    pub fn from_scores(scores: Vec<PredicateScore>) -> SdReport {
        let ids = |pred: fn(&PredicateScore) -> bool| -> Vec<PredicateId> {
            scores
                .iter()
                .enumerate()
                .filter(|(_, s)| pred(s))
                .map(|(i, _)| PredicateId::from_raw(i as u32))
                .collect()
        };
        let discriminative = ids(|s| s.holds_in_failed > 0);
        let fully_discriminative = ids(PredicateScore::fully_discriminative);
        SdReport {
            scores,
            discriminative,
            fully_discriminative,
        }
    }

    /// Convenience: analyze an [`Extraction`].
    pub fn from_extraction(ex: &Extraction) -> SdReport {
        Self::analyze(&ex.catalog, &ex.observations)
    }

    /// The fully-discriminative predicates excluding the failure indicator
    /// itself and any unsafe-to-intervene predicates — the candidate set
    /// handed to causal analysis (§3.3, §4).
    pub fn aid_candidates(
        &self,
        catalog: &PredicateCatalog,
        failure: PredicateId,
    ) -> Vec<PredicateId> {
        self.fully_discriminative
            .iter()
            .copied()
            .filter(|&id| id != failure)
            .filter(|&id| {
                let p = catalog.get(id);
                p.safe && p.action.is_some() && !matches!(p.kind, PredicateKind::Failure { .. })
            })
            .collect()
    }

    /// Predicates ranked by F1 (desc), then precision, then id — what a
    /// plain SD tool would show the developer.
    pub fn ranked(&self) -> Vec<(PredicateId, PredicateScore)> {
        let mut v: Vec<(PredicateId, PredicateScore)> = self
            .discriminative
            .iter()
            .map(|&id| (id, self.scores[id.index()]))
            .collect();
        v.sort_by(|(ia, a), (ib, b)| {
            b.f1()
                .partial_cmp(&a.f1())
                .unwrap()
                .then(b.precision().partial_cmp(&a.precision()).unwrap())
                .then(ia.cmp(ib))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_predicates::{MethodInstance, Predicate};
    use aid_trace::MethodId;
    use aid_util::DenseBitSet;

    fn obs(n: usize, bits: &[usize], failed: bool) -> RunObservation {
        RunObservation {
            failed,
            observed: DenseBitSet::from_indices(n, bits.iter().copied()),
            windows: vec![None; n],
        }
    }

    fn catalog(n: usize) -> PredicateCatalog {
        let mut c = PredicateCatalog::new();
        for i in 0..n {
            c.insert(Predicate {
                kind: PredicateKind::RunsTooSlow {
                    site: MethodInstance::new(MethodId::from_raw(i as u32), 0),
                    threshold: 1,
                },
                safe: true,
                action: Some(aid_predicates::InterventionAction::SuppressFlaky {
                    site: MethodInstance::new(MethodId::from_raw(i as u32), 0),
                }),
            });
        }
        c
    }

    #[test]
    fn precision_recall_fully_discriminative() {
        let c = catalog(3);
        // P0: all failed, never in success → fully discriminative.
        // P1: all failed AND one success → precision < 1.
        // P2: one of two failed → recall < 1.
        let observations = vec![
            obs(3, &[1], false),
            obs(3, &[0, 1, 2], true),
            obs(3, &[0, 1], true),
        ];
        let r = SdReport::analyze(&c, &observations);
        let p0 = PredicateId::from_raw(0);
        let p1 = PredicateId::from_raw(1);
        let p2 = PredicateId::from_raw(2);
        assert_eq!(r.scores[0].precision(), 1.0);
        assert_eq!(r.scores[0].recall(), 1.0);
        assert!(r.scores[1].precision() < 1.0);
        assert_eq!(r.scores[1].recall(), 1.0);
        assert!(r.scores[2].recall() < 1.0);
        assert_eq!(r.fully_discriminative, vec![p0]);
        assert!(r.discriminative.contains(&p1) && r.discriminative.contains(&p2));
    }

    #[test]
    fn ranked_puts_best_first() {
        let c = catalog(3);
        let observations = vec![
            obs(3, &[1], false),
            obs(3, &[0, 1, 2], true),
            obs(3, &[0, 1], true),
        ];
        let r = SdReport::analyze(&c, &observations);
        let ranked = r.ranked();
        assert_eq!(ranked[0].0, PredicateId::from_raw(0));
    }

    #[test]
    fn aid_candidates_exclude_failure_and_unsafe() {
        let c = catalog(2);
        let mut cat2 = PredicateCatalog::new();
        for (_, p) in c.iter() {
            let mut p = p.clone();
            if matches!(p.kind, PredicateKind::RunsTooSlow { site, .. } if site.method.raw() == 1) {
                p.safe = false;
            }
            cat2.insert(p);
        }
        let f = cat2.insert(Predicate {
            kind: PredicateKind::Failure {
                signature: aid_trace::FailureSignature {
                    kind: "X".into(),
                    method: MethodId::from_raw(0),
                },
            },
            safe: true,
            action: None,
        });
        let observations = vec![obs(3, &[], false), obs(3, &[0, 1, 2], true)];
        let r = SdReport::analyze(&cat2, &observations);
        assert_eq!(r.fully_discriminative.len(), 3);
        let cands = r.aid_candidates(&cat2, f);
        assert_eq!(cands, vec![PredicateId::from_raw(0)]);
    }

    #[test]
    fn empty_failures_scores_zero_recall() {
        let c = catalog(1);
        let observations = vec![obs(1, &[0], false)];
        let r = SdReport::analyze(&c, &observations);
        assert_eq!(r.scores[0].recall(), 0.0);
        assert!(!r.scores[0].fully_discriminative());
        assert!(r.fully_discriminative.is_empty());
    }
}
