//! Case study 2: **confluent-kafka-dotnet issue #279** — a use-after-free
//! of a Kafka consumer (§7.1.2).
//!
//! The main thread creates a consumer and starts a child thread; the child
//! does some preparation work and then commits offsets on the consumer. A
//! transient fault occasionally makes the preparation run long; meanwhile
//! the main thread disposes the consumer on a fixed schedule. When the
//! child is slow, `Dispose` wins the race and `Commit` throws
//! `ObjectDisposed` — the paper's 5-step explanation: (1) main starts the
//! child, (2) the child runs too slow, (3) main disposes the consumer,
//! (4) the child commits on it, (5) the commit throws and crashes.

use crate::helpers::inline_mirrors;
use crate::{CaseStudy, PaperRow, RootKind};
use aid_predicates::ExtractionConfig;
use aid_sim::program::{Cmp, Expr, Reg};
use aid_sim::ProgramBuilder;

/// Preparation time without the transient fault, in ticks.
const FAST_PREP: u64 = 5;
/// Extra ticks when the transient fault fires.
const FAULT_DELAY: u64 = 260;
/// Mirror symptoms between preparation and commit.
const MIRRORS: usize = 57;

/// Builds the case.
pub fn case() -> CaseStudy {
    let mut b = ProgramBuilder::new("kafka");
    let alive = b.object("consumerAlive", 1);

    // Child-side: transient-fault-prone preparation (the root cause).
    let prepare = b.method("PrepareCommit", |m| {
        m.compute(FAST_PREP).flaky_delay(0.5, FAULT_DELAY);
    });
    // Mirrors keyed on "preparation was slow" (computed from the clock).
    let mirrors = inline_mirrors(&mut b, "BatchStep", Reg(2), MIRRORS, 6);
    // The doomed call: reads the consumer's liveness as its only operation.
    let commit = b.method("Commit", |m| {
        m.throw_if_obj(alive, Cmp::Eq, Expr::Const(0), "ObjectDisposed");
    });
    let commit_offsets = b.method("CommitOffsets", |m| {
        m.call(commit);
    });
    let worker = b.method("ConsumeWorkerLoop", |m| {
        m.set(Reg(1), Expr::Now).call(prepare).set_if(
            Reg(2),
            Expr::sub(Expr::Now, Expr::Reg(Reg(1))),
            Cmp::Gt,
            Expr::Const((FAST_PREP + 55) as i64),
            Expr::Const(1),
            Expr::Const(0),
        );
        for mm in &mirrors {
            m.call(*mm);
        }
        m.call(commit_offsets);
    });

    // Main-side: dispose on a schedule that lands between the fast and the
    // slow commit times.
    let dispose = b.method("DisposeConsumer", |m| {
        m.compute(2).write(alive, Expr::Const(0));
    });
    let app = b.method("KafkaApp", |m| {
        m.spawn_named("worker")
            .jitter(300, 900)
            .call(dispose)
            .join(1);
    });
    b.thread("main", app, true);
    b.thread("worker", worker, false);

    let program = b.build();
    let mut config = ExtractionConfig::default();
    for m in program.pure_methods() {
        config.pure_methods.insert(m);
    }
    CaseStudy {
        name: "Kafka",
        reference: "github.com/confluentinc/confluent-kafka-dotnet issue #279",
        summary: "The main thread disposes a Kafka consumer while a slow \
                  child thread still needs it; the child's commit on the \
                  disposed consumer throws and crashes the application.",
        program,
        config,
        runs_per_round: 10,
        root: RootKind::RunsTooSlow,
        paper: PaperRow {
            sd_predicates: 72,
            causal_path: 5,
            aid: 17,
            tagt: 33,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_case, collect_logs, run_case};
    use aid_predicates::PredicateKind;

    #[test]
    fn use_after_free_predicate_appears() {
        let case = case();
        let set = collect_logs(&case);
        let analysis = analyze_case(&case, &set);
        let uaf = analysis.sd.fully_discriminative.iter().any(|&p| {
            matches!(
                analysis.extraction.catalog.get(p).kind,
                PredicateKind::OrderViolation {
                    object: Some(_),
                    ..
                }
            )
        });
        assert!(
            uaf,
            "dispose-before-commit must surface as a use-after-free"
        );
    }

    #[test]
    fn aid_finds_the_slow_preparation_and_beats_tagt() {
        let case = case();
        let report = run_case(&case, 2);
        assert!(report.root_matches, "root: {}", report.root_description);
        assert!(
            report.aid_rounds < report.tagt_rounds,
            "AID {} vs TAGT {}",
            report.aid_rounds,
            report.tagt_rounds
        );
        assert!(
            report.causal_path >= 4,
            "paper path is 5: got {}",
            report.causal_path
        );
    }
}
