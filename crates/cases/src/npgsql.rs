//! Case study 1: **Npgsql issue #2485** — a data race on a connector-pool
//! index (Example 1 / §7.1.1 / Figure 9 of the paper).
//!
//! `TryGetValue` scans the pool up to `_nextSlot`; `GetOrAdd` increments
//! `_nextSlot` under a lock that `TryGetValue` does not take. When the
//! increment lands inside `TryGetValue`'s unsynchronized scan window, the
//! scan indexes past the array and the application crashes with
//! `IndexOutOfRange`. Whether the interleaving happens depends on thread
//! timing — the failure is intermittent.
//!
//! The model keeps the mechanism exact: the reader's racy read is the last
//! operation of its window, the writer's increment is gated to start after
//! the reader, so *the data-race predicate holds iff the run fails*. A tail
//! of connection-validation helpers mirrors the corrupted index (symptom
//! predicates), sized so SD reports ~14 fully-discriminative predicates as
//! in Figure 7.

use crate::helpers::inline_mirrors;
use crate::{CaseStudy, PaperRow, RootKind};
use aid_predicates::ExtractionConfig;
use aid_sim::program::{Cmp, Expr, Reg};
use aid_sim::ProgramBuilder;

/// Builds the case.
pub fn case() -> CaseStudy {
    let mut b = ProgramBuilder::new("npgsql");
    let conn_flag = b.object("connOpen", 0);
    let next_slot = b.object("_nextSlot", 10);

    // The racy reader: window ends exactly at the unsynchronized read.
    let try_get = b.method("TryGetValue", |m| {
        m.write(conn_flag, Expr::Const(1))
            .jitter(8, 40)
            .read(next_slot, Reg(1));
    });
    // The racy writer: appends a pool entry, bumping the index.
    let get_or_add = b.method("GetOrAdd", |m| {
        m.jitter(1, 6).write(next_slot, Expr::Const(11));
    });
    let pool_loop = b.method("PoolWorkerLoop", |m| {
        m.wait_until(Expr::Obj(conn_flag), Cmp::Eq, Expr::Const(1))
            .jitter(0, 30)
            .call(get_or_add);
    });

    // Verdict + symptom cascade on the connection thread.
    let validate = b.pure_method("ValidateIndex", |m| {
        m.set_if(
            Reg(2),
            Expr::Reg(Reg(1)),
            Cmp::Gt,
            Expr::Const(10),
            Expr::Const(1),
            Expr::Const(0),
        )
        .ret(Expr::Reg(Reg(2)));
    });
    let mirrors = inline_mirrors(&mut b, "ConnCheck", Reg(2), 8, 4);

    // The crash site: scans the (stale) array bound.
    let access = b.method("AccessPools", |m| {
        m.compute(1).throw_if(
            Expr::Reg(Reg(1)),
            Cmp::Gt,
            Expr::Const(10),
            "IndexOutOfRange",
        );
    });
    let worker = b.method("OpenConnection", |m| {
        m.call(try_get).call(validate);
        for mm in &mirrors {
            m.call(*mm);
        }
        m.call(access);
    });
    let main = b.method("Main", |m| {
        m.spawn_named("conn").spawn_named("pool").join(1).join(2);
    });
    b.thread("main", main, true);
    b.thread("conn", worker, false);
    b.thread("pool", pool_loop, false);

    let program = b.build();
    let mut config = ExtractionConfig::default();
    for m in program.pure_methods() {
        config.pure_methods.insert(m);
    }
    CaseStudy {
        name: "Npgsql",
        reference: "github.com/npgsql/npgsql issue #2485",
        summary: "Two threads race on a pool-index variable: one increments \
                  it while the other reads it and then indexes the pool \
                  array past its size, throwing IndexOutOfRange and crashing \
                  the application.",
        program,
        config,
        runs_per_round: 10,
        root: RootKind::DataRace,
        paper: PaperRow {
            sd_predicates: 14,
            causal_path: 3,
            aid: 5,
            tagt: 11,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_case, collect_logs, run_case};
    use aid_predicates::PredicateKind;

    #[test]
    fn race_predicate_is_fully_discriminative() {
        let case = case();
        let set = collect_logs(&case);
        let analysis = analyze_case(&case, &set);
        let race = analysis
            .sd
            .fully_discriminative
            .iter()
            .find(|&&p| {
                matches!(
                    analysis.extraction.catalog.get(p).kind,
                    PredicateKind::DataRace { .. }
                )
            })
            .copied();
        assert!(race.is_some(), "the data race must survive SD filtering");
        assert!(analysis.dag.contains(race.unwrap()));
    }

    #[test]
    fn aid_finds_the_race_and_beats_tagt() {
        let case = case();
        let report = run_case(&case, 1);
        assert!(report.root_matches, "root: {}", report.root_description);
        assert!(
            report.aid_rounds < report.tagt_rounds,
            "AID {} vs TAGT {}",
            report.aid_rounds,
            report.tagt_rounds
        );
        assert!(
            report.causal_path >= 2 && report.causal_path <= 4,
            "paper path is 3: got {}",
            report.causal_path
        );
        assert!(report.explanation.contains("data race"));
    }
}
