//! Shared building blocks for the case-study programs.
//!
//! Real failures drag a tail of *symptoms* behind the root cause: methods
//! that return wrong values or run slow because upstream state is already
//! corrupted. These helpers attach such cascades to a program so each case
//! study reaches the predicate counts the paper reports, with the same
//! causal irrelevance (repairing a symptom never stops the failure).

use aid_sim::program::{Cmp, Expr, Reg};
use aid_sim::ProgramBuilder;
use aid_trace::{MethodId, ObjectId};

/// Registers reserved for case mechanisms (R0..R8, including propagator
/// chains); mirrors rotate through R9..R15.
pub const FIRST_SCRATCH_REG: u8 = 9;

/// Adds `count` inline mirror methods to call from the mechanism thread:
/// each copies the verdict register into a rotating scratch register and
/// returns it (pure ⇒ a fully-discriminative `WrongReturn` predicate with a
/// safe `ForceReturn` repair). Every `slow_every`-th mirror instead burns
/// extra ticks when the verdict is set (a `RunsTooSlow` symptom).
pub fn inline_mirrors(
    b: &mut ProgramBuilder,
    prefix: &str,
    verdict: Reg,
    count: usize,
    slow_every: usize,
) -> Vec<MethodId> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let reg = Reg(FIRST_SCRATCH_REG + (i % 7) as u8);
        let name = format!("{prefix}{i}");
        let m = if slow_every != 0 && i % slow_every == slow_every - 1 {
            // Slow-only symptom: constant return, so it contributes exactly
            // one predicate (RunsTooSlow), not a WrongReturn as well.
            b.pure_method(&name, |mb| {
                mb.compute_if(Expr::Reg(verdict), Cmp::Eq, Expr::Const(1), 60)
                    .ret(Expr::Const(0));
            })
        } else {
            b.pure_method(&name, |mb| {
                mb.set(reg, Expr::Reg(verdict)).ret(Expr::Reg(reg));
            })
        };
        out.push(m);
    }
    out
}

/// Declares a monitor thread: it waits for `phase` to be raised, then runs
/// `count` mirror methods keyed on the shared `infected` object (peeked, so
/// no spurious race predicates appear), raises `done`, and exits. Jitter
/// between mirrors makes the monitor's predicates temporally incomparable
/// with other monitors — this is what creates junctions in the AC-DAG.
///
/// Returns the thread's entry method. The caller must declare the thread
/// with `auto_start = false` under `thread_name` and spawn it.
pub fn monitor_thread(
    b: &mut ProgramBuilder,
    name_prefix: &str,
    phase: ObjectId,
    infected: ObjectId,
    done: ObjectId,
    count: usize,
    slow_every: usize,
    spread: u64,
) -> MethodId {
    let mut mirrors = Vec::with_capacity(count);
    for i in 0..count {
        let reg = Reg(FIRST_SCRATCH_REG + (i % 7) as u8);
        let name = format!("{name_prefix}Probe{i}");
        let m = if slow_every != 0 && i % slow_every == slow_every - 1 {
            // Slow-only probe (constant return): one RunsTooSlow predicate.
            b.pure_method(&name, |mb| {
                mb.compute_if(Expr::Obj(infected), Cmp::Eq, Expr::Const(1), 60)
                    .ret(Expr::Const(0));
            })
        } else {
            b.pure_method(&name, |mb| {
                mb.set_if(
                    reg,
                    Expr::Obj(infected),
                    Cmp::Eq,
                    Expr::Const(1),
                    Expr::Const(1),
                    Expr::Const(0),
                )
                .jitter(1, 4)
                .ret(Expr::Reg(reg));
            })
        };
        mirrors.push(m);
    }
    b.method(&format!("{name_prefix}Loop"), |mb| {
        mb.wait_until(Expr::Obj(phase), Cmp::Eq, Expr::Const(1))
            .jitter(0, spread.max(1));
        for m in &mirrors {
            mb.call(*m);
        }
        mb.write(done, Expr::add(Expr::Obj(done), Expr::Const(1)));
    })
}

/// Adds a chain of `count` pure propagator methods: the first reads
/// `verdict`, each subsequent one reads its predecessor's register, and the
/// last leaves the final verdict in the returned register. Repairing any
/// link (`ForceReturn 0`) breaks everything downstream — each link is a
/// counterfactual cause of whatever consumes the final register.
pub fn propagator_chain(
    b: &mut ProgramBuilder,
    prefix: &str,
    verdict: Reg,
    first_reg: u8,
    count: usize,
) -> (Vec<MethodId>, Reg) {
    assert!(count >= 1);
    assert!(
        first_reg as usize + count <= FIRST_SCRATCH_REG as usize,
        "propagator chain would collide with mirror scratch registers"
    );
    let mut methods = Vec::with_capacity(count);
    let mut prev = verdict;
    for i in 0..count {
        let reg = Reg(first_reg + i as u8);
        let name = format!("{prefix}{i}");
        let m = b.pure_method(&name, |mb| {
            mb.compute(2).set(reg, Expr::Reg(prev)).ret(Expr::Reg(reg));
        });
        methods.push(m);
        prev = reg;
    }
    (methods, prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_sim::Simulator;

    #[test]
    fn propagator_chain_carries_the_verdict() {
        let mut b = ProgramBuilder::new("chain");
        let (chain, last) = propagator_chain(&mut b, "Step", Reg(0), 2, 3);
        let main = b.method("Main", |mb| {
            mb.set(Reg(0), Expr::Const(1));
            for m in &chain {
                mb.call(*m);
            }
            mb.throw_if(Expr::Reg(last), Cmp::Eq, Expr::Const(1), "Propagated");
        });
        b.thread("main", main, true);
        let sim = Simulator::new(b.build());
        let t = sim.run(0, &aid_sim::InterventionPlan::empty());
        assert!(t.failed(), "verdict must reach the end of the chain");
    }

    #[test]
    fn inline_mirrors_are_pure_and_named() {
        let mut b = ProgramBuilder::new("mirrors");
        let ms = inline_mirrors(&mut b, "Echo", Reg(0), 5, 3);
        let main = b.method("Main", |mb| {
            for m in &ms {
                mb.call(*m);
            }
        });
        b.thread("main", main, true);
        let p = b.build();
        assert_eq!(ms.len(), 5);
        for &m in &ms {
            assert!(p.method(m).pure);
        }
        assert_eq!(p.method(ms[0]).name, "Echo0");
    }
}
