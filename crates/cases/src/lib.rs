//! The six real-world case studies of Section 7.1, modeled as simulator
//! programs that reproduce each bug's *mechanism* (see DESIGN.md's
//! substitution table):
//!
//! | module | real system | bug class | reference |
//! |---|---|---|---|
//! | [`npgsql`] | Npgsql (.NET PostgreSQL driver) | data race on a pool index | GitHub issue #2485 |
//! | [`kafka`] | Kafka .NET client app | use-after-free of a consumer | confluent-kafka-dotnet #279 |
//! | [`cosmosdb`] | Azure Cosmos DB app | cache-expiry timing bug | azure-cosmos-dotnet-v3 PR #713 |
//! | [`network`] | proprietary: datacenter control plane | random-id collision | — |
//! | [`buildandtest`] | proprietary: build & test platform | order violation | — |
//! | [`healthtelemetry`] | proprietary: health telemetry module | race condition | — |

pub mod buildandtest;
pub mod cosmosdb;
pub mod healthtelemetry;
pub mod helpers;
pub mod kafka;
pub mod network;
pub mod npgsql;

use aid_core::{discover, render_explanation, AidAnalysis, Strategy};
use aid_predicates::{ExtractionConfig, PredicateKind};
use aid_sim::{SimExecutor, Simulator};
use aid_trace::TraceSet;

/// The paper's Figure 7 row for a case.
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// Column 3: #fully-discriminative predicates (SD).
    pub sd_predicates: usize,
    /// Column 4: #predicates in the causal path.
    pub causal_path: usize,
    /// Column 5: AID interventions.
    pub aid: usize,
    /// Column 6: TAGT interventions (worst case).
    pub tagt: usize,
}

/// Which predicate kind the true root cause should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RootKind {
    /// A data race.
    DataRace,
    /// A too-slow execution (timing/transient fault).
    RunsTooSlow,
    /// An order violation / use-after-free.
    OrderViolation,
    /// A random-value collision.
    ValueCollision,
    /// A wrong return value (e.g. a failed probabilistic check whose
    /// outcome gates a message send).
    WrongReturn,
}

impl RootKind {
    /// Whether a predicate kind matches.
    pub fn matches(&self, kind: &PredicateKind) -> bool {
        matches!(
            (self, kind),
            (RootKind::DataRace, PredicateKind::DataRace { .. })
                | (RootKind::RunsTooSlow, PredicateKind::RunsTooSlow { .. })
                | (
                    RootKind::OrderViolation,
                    PredicateKind::OrderViolation { .. }
                )
                | (
                    RootKind::ValueCollision,
                    PredicateKind::ValueCollision { .. }
                )
                | (RootKind::WrongReturn, PredicateKind::WrongReturn { .. })
        )
    }
}

/// A fully-specified case study.
pub struct CaseStudy {
    /// Short name (matches Figure 7 column 1).
    pub name: &'static str,
    /// Issue/PR reference or "proprietary".
    pub reference: &'static str,
    /// One-paragraph description of the bug mechanism.
    pub summary: &'static str,
    /// The model program.
    pub program: aid_sim::Program,
    /// Extraction configuration (purity markings, safety knobs).
    pub config: ExtractionConfig,
    /// Expected root-cause predicate kind.
    pub root: RootKind,
    /// Runs per intervention round. Rounds conclude "repaired" only when no
    /// run fails, so rare failures (e.g. the Network id collision at
    /// p = 1/8) need enough repetitions that a lucky streak is improbable
    /// (the paper's footnote 1).
    pub runs_per_round: usize,
    /// The paper's numbers for this case.
    pub paper: PaperRow,
}

/// The outcome of running a case study end to end.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Case name.
    pub name: &'static str,
    /// Measured #fully-discriminative predicates (Figure 7 col 3).
    pub sd_predicates: usize,
    /// Measured causal-path length excluding F (col 4).
    pub causal_path: usize,
    /// Measured AID interventions (col 5).
    pub aid_rounds: usize,
    /// Measured TAGT interventions (col 6, same executor budget).
    pub tagt_rounds: usize,
    /// The paper's analytic TAGT worst case `D⌈log₂N⌉`.
    pub tagt_analytic: usize,
    /// Whether the discovered root cause matches the expected kind.
    pub root_matches: bool,
    /// Human-readable root cause.
    pub root_description: String,
    /// The rendered explanation (causal chain).
    pub explanation: String,
    /// The paper row for comparison.
    pub paper: PaperRow,
}

/// All six case studies, in Figure 7 order.
pub fn all_cases() -> Vec<CaseStudy> {
    vec![
        npgsql::case(),
        kafka::case(),
        cosmosdb::case(),
        network::case(),
        buildandtest::case(),
        healthtelemetry::case(),
    ]
}

/// Collects the paper's "50 successful and 50 failed executions".
pub fn collect_logs(case: &CaseStudy) -> TraceSet {
    collect_logs_sized(case, 50, 50)
}

/// Collects a corpus of the given size — smaller corpora keep prefix-replay
/// tests (e.g. `aid_store`'s incremental-equivalence suite) affordable
/// while exercising the same mechanisms.
pub fn collect_logs_sized(case: &CaseStudy, want_ok: usize, want_fail: usize) -> TraceSet {
    let sim = Simulator::new(case.program.clone());
    let set = sim.collect_balanced(want_ok, want_fail, 60_000);
    let (ok, fail) = set.counts();
    assert!(
        ok >= want_ok && fail >= want_fail,
        "{}: wanted {want_ok}/{want_fail} runs, got {ok}/{fail} — mechanism too (in)frequent",
        case.name
    );
    set
}

/// Observation phase for a case.
pub fn analyze_case(case: &CaseStudy, set: &TraceSet) -> AidAnalysis {
    aid_core::analyze(set, &case.config)
}

/// Runs a case end to end (observation + AID + TAGT) and reports the
/// Figure 7 measurements.
pub fn run_case(case: &CaseStudy, seed: u64) -> CaseReport {
    let set = collect_logs(case);
    let analysis = analyze_case(case, &set);
    let sim = Simulator::new(case.program.clone());

    let mut aid_exec = SimExecutor::new(
        sim.clone(),
        analysis.extraction.catalog.clone(),
        analysis.extraction.failure,
        case.runs_per_round,
        1_000_000,
    );
    let aid = discover(&analysis.dag, &mut aid_exec, Strategy::Aid, seed);

    let mut tagt_exec = SimExecutor::new(
        sim,
        analysis.extraction.catalog.clone(),
        analysis.extraction.failure,
        case.runs_per_round,
        2_000_000,
    );
    let tagt = discover(&analysis.dag, &mut tagt_exec, Strategy::Tagt, seed);

    let root_matches = aid
        .root_cause()
        .map(|p| case.root.matches(&analysis.extraction.catalog.get(p).kind))
        .unwrap_or(false);
    let root_description = aid
        .root_cause()
        .map(|p| analysis.extraction.catalog.describe(p, &set))
        .unwrap_or_else(|| "<none>".into());
    let explanation = render_explanation(&analysis, &aid, &set);

    CaseReport {
        name: case.name,
        sd_predicates: analysis.sd_predicate_count(),
        causal_path: aid.causal.len(),
        aid_rounds: aid.rounds,
        tagt_rounds: tagt.rounds,
        tagt_analytic: aid_core::analytic_worst_case(
            analysis.dag.candidates().len(),
            aid.causal.len(),
        ),
        root_matches,
        root_description,
        explanation,
        paper: case.paper,
    }
}

#[cfg(test)]
mod diag {
    use super::*;

    /// Prints the full measured inventory per case. Run with:
    /// `cargo test -p aid-cases diag -- --ignored --nocapture`
    #[test]
    #[ignore = "diagnostic output only"]
    fn dump_case_inventories() {
        for case in all_cases() {
            let set = collect_logs(&case);
            let analysis = analyze_case(&case, &set);
            println!("=== {} ===", case.name);
            println!("catalog: {} predicates", analysis.extraction.catalog.len());
            println!(
                "fully discriminative: {} (paper {})",
                analysis.sd_predicate_count(),
                case.paper.sd_predicates
            );
            println!(
                "candidates (safe+intervenable): {}",
                analysis.candidates.len()
            );
            println!(
                "dag nodes: {} dropped: {}",
                analysis.dag.len(),
                analysis.dag.dropped().len()
            );
            for &p in analysis.dag.candidates() {
                println!(
                    "  [{}] {}",
                    p.raw(),
                    analysis.extraction.catalog.describe(p, &set)
                );
            }
            let report = run_case(&case, 11);
            println!(
                "AID {} rounds (paper {}), TAGT {} (paper {}), analytic {}",
                report.aid_rounds,
                case.paper.aid,
                report.tagt_rounds,
                case.paper.tagt,
                report.tagt_analytic
            );
            println!(
                "path ({} vs paper {}):\n{}",
                report.causal_path, case.paper.causal_path, report.explanation
            );
        }
    }
}

#[cfg(test)]
mod diag_network {
    use super::*;

    #[test]
    #[ignore = "diagnostic output only"]
    fn dump_network_rounds() {
        let case = network::case();
        let set = collect_logs(&case);
        let analysis = analyze_case(&case, &set);
        let sim = aid_sim::Simulator::new(case.program.clone());
        let mut exec = aid_sim::SimExecutor::new(
            sim,
            analysis.extraction.catalog.clone(),
            analysis.extraction.failure,
            case.runs_per_round,
            1_000_000,
        );
        let r = aid_core::discover(&analysis.dag, &mut exec, aid_core::Strategy::Aid, 11);
        for (i, log) in r.log.iter().enumerate() {
            let names: Vec<String> = log
                .intervened
                .iter()
                .map(|&p| analysis.extraction.catalog.describe(p, &set))
                .collect();
            println!(
                "round {} [{:?}] stopped={} confirmed={:?} pruned={} | {:?}",
                i + 1,
                log.phase,
                log.stopped,
                log.confirmed,
                log.pruned.len(),
                names
            );
        }
        println!("causal: {:?}", r.causal);
    }
}
