//! Case study 6: **HealthTelemetry** — a proprietary runtime-health
//! reporting module used across services; AID identified a race condition
//! (§7.1.4). This is the largest case: 93 fully-discriminative predicates
//! and a 10-predicate causal path in the paper.
//!
//! A telemetry agent snapshots a shared report sequence number while a
//! flush worker concurrently bumps it. When the bump lands inside the
//! snapshot window, the agent assembles a report against a stale sequence;
//! the corrupt verdict rides a long aggregation chain and the final health
//! report write aborts the agent.

use crate::helpers::{inline_mirrors, monitor_thread, propagator_chain};
use crate::{CaseStudy, PaperRow, RootKind};
use aid_predicates::ExtractionConfig;
use aid_sim::program::{Cmp, Expr, Reg};
use aid_sim::ProgramBuilder;

/// Builds the case.
pub fn case() -> CaseStudy {
    let mut b = ProgramBuilder::new("healthtelemetry");
    let flag = b.object("agentActive", 0);
    let seq = b.object("reportSeq", 10);
    let infected = b.object("staleSnapshot", 0);
    let phase = b.object("aggregationPhase", 0);
    let done = b.object("monitorsDone", 0);

    // The racy snapshot: window ends at the unsynchronized read.
    let snapshot = b.method("ReadSnapshot", |m| {
        m.write(flag, Expr::Const(1))
            .jitter(8, 40)
            .read(seq, Reg(1));
    });
    // The concurrent bump.
    let flush = b.method("FlushBuffer", |m| {
        m.jitter(1, 6).write(seq, Expr::Const(11));
    });
    let flush_loop = b.method("FlushWorkerLoop", |m| {
        m.wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1))
            .jitter(0, 30)
            .call(flush);
    });

    let validate = b.pure_method("ValidateSnapshot", |m| {
        m.set_if(
            Reg(2),
            Expr::Reg(Reg(1)),
            Cmp::Gt,
            Expr::Const(10),
            Expr::Const(1),
            Expr::Const(0),
        )
        .ret(Expr::Reg(Reg(2)));
    });
    // The long aggregation chain — six causal links (paper path: 10).
    let (aggregate, last) = propagator_chain(&mut b, "AggregateStage", Reg(2), 3, 6);
    let publish = b.method("PublishHealthState", |m| {
        m.write(infected, Expr::Reg(Reg(2)))
            .write(phase, Expr::Const(1));
    });
    let mirrors = inline_mirrors(&mut b, "Counterprobe", Reg(2), 20, 6);
    let mon_a = monitor_thread(&mut b, "ServiceWatch", phase, infected, done, 24, 7, 6);
    let mon_b = monitor_thread(&mut b, "AlertScan", phase, infected, done, 22, 7, 6);

    let report = b.method("WriteHealthReport", |m| {
        m.compute(1).throw_if(
            Expr::Reg(last),
            Cmp::Eq,
            Expr::Const(1),
            "CorruptHealthReport",
        );
    });
    let agent = b.method("TelemetryAgent", |m| {
        m.spawn_named("flush")
            .spawn_named("monA")
            .spawn_named("monB")
            .call(snapshot)
            .call(validate);
        for mm in &aggregate {
            m.call(*mm);
        }
        m.call(publish);
        for mm in &mirrors {
            m.call(*mm);
        }
        m.wait_until(Expr::Obj(done), Cmp::Eq, Expr::Const(2))
            .call(report)
            .join(1)
            .join(2)
            .join(3);
    });
    b.thread("main", agent, true);
    b.thread("flush", flush_loop, false);
    b.thread("monA", mon_a, false);
    b.thread("monB", mon_b, false);

    let program = b.build();
    let mut config = ExtractionConfig::default();
    for m in program.pure_methods() {
        config.pure_methods.insert(m);
    }
    CaseStudy {
        name: "HealthTelemetry",
        reference: "proprietary (Microsoft service health telemetry module)",
        summary: "A flush worker bumps the shared report sequence inside \
                  the agent's snapshot window (a race); the stale snapshot \
                  rides a six-stage aggregation chain and the final health \
                  report write aborts the agent.",
        program,
        config,
        runs_per_round: 10,
        root: RootKind::DataRace,
        paper: PaperRow {
            sd_predicates: 93,
            causal_path: 10,
            aid: 40,
            tagt: 70,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_case;

    #[test]
    fn aid_finds_the_race_behind_the_long_chain() {
        let case = case();
        let report = run_case(&case, 6);
        assert!(report.root_matches, "root: {}", report.root_description);
        assert!(
            report.causal_path >= 8,
            "paper path is 10: got {} ({})",
            report.causal_path,
            report.explanation
        );
        assert!(report.aid_rounds < report.tagt_rounds);
    }
}
