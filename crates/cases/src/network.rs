//! Case study 4: **Network** — a proprietary datacenter-network control
//! plane that intermittently failed for months; AID identified a random
//! number collision as the root cause (§7.1.4).
//!
//! Two components allocate "unique" session identifiers by drawing from the
//! same small random space. When the draws collide, registration fails.
//! The collision is rare and utterly schedule-independent, which is what
//! made it so hard to localize by eye.
//!
//! This case exercises two distinctive pieces of the framework: the
//! `ValueCollision` predicate (repaired by pinning one draw), and the §3.3
//! safety knob — the control plane's methods mutate router state, so
//! try/catch interventions are disallowed (`catch_requires_pure`), which is
//! why the paper's causal path has exactly **one** predicate.

use crate::helpers::monitor_thread;
use crate::{CaseStudy, PaperRow, RootKind};
use aid_predicates::ExtractionConfig;
use aid_sim::program::{Cmp, Expr, Reg};
use aid_sim::ProgramBuilder;

/// Builds the case.
pub fn case() -> CaseStudy {
    let mut b = ProgramBuilder::new("network");
    let infected = b.object("idCollision", 0);
    let phase = b.object("allocPhase", 0);
    let done = b.object("auditDone", 0);

    let alloc_a = b.pure_method("AllocSessionIdA", |m| {
        m.rand_range(Reg(1), 0, 7).ret(Expr::Reg(Reg(1)));
    });
    // The second allocator publishes the collision verdict, then lingers
    // (flushing tables), so its end time interleaves with the audit
    // thread's probes — the audit branch is temporally incomparable with
    // the collision predicate, giving the AC-DAG its junction.
    let alloc_b = b.method("AllocSessionIdB", |m| {
        m.rand_range(Reg(2), 0, 7)
            .set_if(
                Reg(3),
                Expr::Reg(Reg(1)),
                Cmp::Eq,
                Expr::Reg(Reg(2)),
                Expr::Const(1),
                Expr::Const(0),
            )
            .write(infected, Expr::Reg(Reg(3)))
            .write(phase, Expr::Const(1))
            .jitter(5, 400)
            .ret(Expr::Reg(Reg(2)));
    });
    let audit = monitor_thread(&mut b, "RouteAudit", phase, infected, done, 22, 6, 280);
    let control = b.method("ControlPlaneLoop", |m| {
        m.spawn_named("audit")
            .call(alloc_a)
            .call(alloc_b)
            .wait_until(Expr::Obj(done), Cmp::Eq, Expr::Const(1))
            .throw_if(
                Expr::Reg(Reg(3)),
                Cmp::Eq,
                Expr::Const(1),
                "DuplicateSessionId",
            )
            .join(1);
    });
    b.thread("main", control, true);
    b.thread("audit", audit, false);

    let program = b.build();
    let mut config = ExtractionConfig::default();
    for m in program.pure_methods() {
        config.pure_methods.insert(m);
    }
    // Control-plane methods mutate router state: exception-handling
    // interventions are unsafe here (§3.3), so MethodFails predicates drop
    // out of the candidate set and the causal path is the collision alone.
    config.catch_requires_pure = true;
    CaseStudy {
        name: "Network",
        reference: "proprietary (Microsoft datacenter network control plane)",
        summary: "Two components draw session ids from the same small \
                  random space; when the draws collide, session \
                  registration throws and the control plane crashes.",
        program,
        config,
        runs_per_round: 72,
        root: RootKind::ValueCollision,
        paper: PaperRow {
            sd_predicates: 24,
            causal_path: 1,
            aid: 2,
            tagt: 5,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_case;

    #[test]
    fn aid_finds_the_collision_in_about_two_rounds() {
        let case = case();
        let report = run_case(&case, 4);
        assert!(report.root_matches, "root: {}", report.root_description);
        assert_eq!(report.causal_path, 1, "the collision alone is causal");
        assert!(
            report.aid_rounds <= 4,
            "paper reports 2 rounds; got {}",
            report.aid_rounds
        );
        assert!(report.aid_rounds < report.tagt_rounds);
    }
}
