//! Case study 5: **BuildAndTest** — a proprietary large-scale build and
//! test platform; AID identified an order violation of two events
//! (§7.1.4).
//!
//! The packaging step is supposed to start only after compilation has
//! published its artifacts, but the scheduling between the two workers is
//! only *usually* right. When packaging starts early it sees no artifacts,
//! carries the corrupt status through verification, and the build finalizer
//! aborts.

use crate::helpers::{inline_mirrors, monitor_thread};
use crate::{CaseStudy, PaperRow, RootKind};
use aid_predicates::ExtractionConfig;
use aid_sim::program::{Cmp, Expr, Reg};
use aid_sim::ProgramBuilder;

/// Builds the case.
pub fn case() -> CaseStudy {
    let mut b = ProgramBuilder::new("buildandtest");
    let compiled = b.object("artifactsReady", 0);
    let infected = b.object("artifactMissing", 0);
    let phase = b.object("verifyPhase", 0);
    let done = b.object("scanDone", 0);

    // The compiler: publishes artifacts as its very last operation.
    let compile = b.method("CompileStep", |m| {
        m.jitter(10, 60).write(compiled, Expr::Const(1));
    });
    let compiler_loop = b.method("CompilerLoop", |m| {
        m.call(compile);
    });

    // The packager: reads the artifact flag as its very first operation —
    // the order violation (package before compile-end) is exactly the
    // failure condition.
    let package = b.method("PackageStep", |m| {
        m.read(compiled, Reg(1));
    });
    let verify = b.pure_method("VerifyArtifact", |m| {
        m.set_if(
            Reg(2),
            Expr::Reg(Reg(1)),
            Cmp::Eq,
            Expr::Const(0),
            Expr::Const(1),
            Expr::Const(0),
        )
        .ret(Expr::Reg(Reg(2)));
    });
    // Symptoms key on the *raw* stale read (R3), not on VerifyArtifact's
    // output: they are siblings of the verification, so repairing the
    // verification stops the failure while they keep firing — exactly the
    // counterfactual violation Definition 2 prunes wholesale.
    let publish = b.method("PublishBuildStatus", |m| {
        m.set_if(
            Reg(3),
            Expr::Reg(Reg(1)),
            Cmp::Eq,
            Expr::Const(0),
            Expr::Const(1),
            Expr::Const(0),
        )
        .write(infected, Expr::Reg(Reg(3)))
        .write(phase, Expr::Const(1));
    });
    let mirrors = inline_mirrors(&mut b, "ManifestCheck", Reg(3), 8, 4);
    let scanner = monitor_thread(&mut b, "TestScan", phase, infected, done, 10, 5, 6);

    let packager = b.method("PackagerLoop", |m| {
        m.jitter(5, 55).call(package).call(publish).call(verify);
        for mm in &mirrors {
            m.call(*mm);
        }
        m.wait_until(Expr::Obj(done), Cmp::Eq, Expr::Const(1))
            .throw_if(
                Expr::Reg(Reg(2)),
                Cmp::Eq,
                Expr::Const(1),
                "ArtifactMissing",
            );
    });
    let main = b.method("Main", |m| {
        m.spawn_named("compiler")
            .spawn_named("packager")
            .spawn_named("scan")
            .join(1)
            .join(2)
            .join(3);
    });
    b.thread("main", main, true);
    b.thread("compiler", compiler_loop, false);
    b.thread("packager", packager, false);
    b.thread("scan", scanner, false);

    let program = b.build();
    let mut config = ExtractionConfig::default();
    for m in program.pure_methods() {
        config.pure_methods.insert(m);
    }
    CaseStudy {
        name: "BuildAndTest",
        reference: "proprietary (Microsoft build & test platform)",
        summary: "Packaging occasionally starts before compilation has \
                  published its artifacts (an order violation); the missing \
                  artifact status propagates through verification and the \
                  finalizer aborts the build.",
        program,
        config,
        runs_per_round: 12,
        root: RootKind::OrderViolation,
        paper: PaperRow {
            sd_predicates: 25,
            causal_path: 3,
            aid: 10,
            tagt: 15,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_case, collect_logs, run_case};
    use aid_predicates::PredicateKind;

    #[test]
    fn order_violation_is_fully_discriminative() {
        let case = case();
        let set = collect_logs(&case);
        let analysis = analyze_case(&case, &set);
        let ov = analysis.sd.fully_discriminative.iter().any(|&p| {
            matches!(
                analysis.extraction.catalog.get(p).kind,
                PredicateKind::OrderViolation { .. }
            )
        });
        assert!(ov, "the compile/package inversion must survive SD");
    }

    #[test]
    fn aid_finds_the_order_violation() {
        // Tie-breaking seeds shift individual round counts; compare over a
        // few seeds like Figure 8's averaging does.
        let case = case();
        let (mut aid_total, mut tagt_total) = (0usize, 0usize);
        for seed in [5u64, 6, 7] {
            let report = run_case(&case, seed);
            assert!(report.root_matches, "root: {}", report.root_description);
            assert!(
                report.causal_path >= 2 && report.causal_path <= 4,
                "paper path is 3: got {}",
                report.causal_path
            );
            aid_total += report.aid_rounds;
            tagt_total += report.tagt_rounds;
        }
        assert!(
            aid_total < tagt_total,
            "AID must win on average: {aid_total} vs {tagt_total}"
        );
    }
}
