//! Case study 3: **azure-cosmos-dotnet-v3 PR #713** — a cache-expiry
//! timing bug (§7.1.3).
//!
//! The application populates a cache whose entries expire after a fixed
//! TTL, runs a pipeline of tasks, then reads a cached entry. Normally the
//! pipeline finishes well inside the TTL; a transient fault occasionally
//! routes one task through an expensive fault-handling path that outlasts
//! the TTL, so the later lookup misses and the request fails.

use crate::helpers::{inline_mirrors, monitor_thread, propagator_chain};
use crate::{CaseStudy, PaperRow, RootKind};
use aid_predicates::ExtractionConfig;
use aid_sim::program::{Cmp, Expr, Reg};
use aid_sim::ProgramBuilder;

/// Cache TTL in ticks.
const TTL: i64 = 150;

/// Builds the case.
pub fn case() -> CaseStudy {
    let mut b = ProgramBuilder::new("cosmosdb");
    let expiry = b.object("cacheExpiry", 0);
    let infected = b.object("entryExpired", 0);
    let phase = b.object("lookupPhase", 0);
    let done = b.object("monitorsDone", 0);

    let populate = b.method("PopulateCache", |m| {
        m.compute(2)
            .write(expiry, Expr::add(Expr::Now, Expr::Const(TTL)));
    });
    // The task pipeline; HandleRequest hides the transient fault handler.
    let task_a = b.method("DeserializePayload", |m| {
        m.compute(3);
    });
    let task_b = b.method("AuthorizeRequest", |m| {
        m.compute(3);
    });
    let handle = b.method("HandleRequest", |m| {
        m.compute(3).flaky_delay(0.5, 320);
    });
    let task_c = b.method("SerializeResponse", |m| {
        m.compute(3);
    });
    // Verdict: has the entry expired by now?
    let validate = b.pure_method("CheckEntryFresh", |m| {
        m.set_if(
            Reg(2),
            Expr::Obj(expiry),
            Cmp::Lt,
            Expr::Now,
            Expr::Const(1),
            Expr::Const(0),
        )
        .ret(Expr::Reg(Reg(2)));
    });
    // The causal lookup chain the paper's 7-step explanation walks.
    let (lookup_chain, last) = propagator_chain(&mut b, "ResolveEndpoint", Reg(2), 3, 3);
    let mirrors = inline_mirrors(&mut b, "RequestProbe", Reg(2), 11, 5);
    let mon_a = monitor_thread(&mut b, "LatencyMonitor", phase, infected, done, 17, 6, 6);
    let mon_b = monitor_thread(&mut b, "QuotaMonitor", phase, infected, done, 16, 6, 6);
    let publish = b.method("PublishDiagnostics", |m| {
        m.write(infected, Expr::Reg(Reg(2)))
            .write(phase, Expr::Const(1));
    });
    let fetch = b.method("ReadCacheEntry", |m| {
        m.compute(1).throw_if(
            Expr::Reg(last),
            Cmp::Eq,
            Expr::Const(1),
            "CacheEntryNotFound",
        );
    });

    let app = b.method("CosmosApp", |m| {
        m.spawn_named("monA")
            .spawn_named("monB")
            .call(populate)
            .call(task_a)
            .call(task_b)
            .call(handle)
            .call(task_c)
            .call(validate);
        for mm in &lookup_chain {
            m.call(*mm);
        }
        m.call(publish);
        for mm in &mirrors {
            m.call(*mm);
        }
        m.wait_until(Expr::Obj(done), Cmp::Eq, Expr::Const(2))
            .call(fetch)
            .join(1)
            .join(2);
    });
    b.thread("main", app, true);
    b.thread("monA", mon_a, false);
    b.thread("monB", mon_b, false);

    let program = b.build();
    let mut config = ExtractionConfig::default();
    for m in program.pure_methods() {
        config.pure_methods.insert(m);
    }
    CaseStudy {
        name: "CosmosDB",
        reference: "github.com/Azure/azure-cosmos-dotnet-v3 pull #713",
        summary: "A transient fault makes one pipeline task outlast the \
                  cache TTL; the later cache lookup misses the expired \
                  entry and the request fails.",
        program,
        config,
        runs_per_round: 10,
        root: RootKind::RunsTooSlow,
        paper: PaperRow {
            sd_predicates: 64,
            causal_path: 7,
            aid: 15,
            tagt: 42,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_case;

    #[test]
    fn aid_finds_the_slow_task_and_explains_the_expiry() {
        let case = case();
        let report = run_case(&case, 3);
        assert!(report.root_matches, "root: {}", report.root_description);
        assert!(
            report.causal_path >= 5,
            "paper path is 7: got {} ({})",
            report.causal_path,
            report.explanation
        );
        assert!(report.aid_rounds < report.tagt_rounds);
        assert!(report.explanation.contains("runs too slow"));
    }
}
