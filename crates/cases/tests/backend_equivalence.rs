//! The `ExecBackend` contract on the six paper case studies: for every
//! case program, the bytecode VM must produce **byte-identical** `Trace`s
//! to the tree-walk interpreter — same events, same access lists, same
//! outcome, same virtual duration — under the empty plan and under
//! representative safe intervention plans, across many seeds.
//!
//! The differential fuzzer (`crates/sim/tests/differential_fuzz.rs`) covers
//! the combinatorial space; this test pins the contract to the actual
//! programs the paper's Figure 7 numbers come from.

use aid_sim::backend::{BytecodeBackend, ExecBackend, TreeWalkBackend};
use aid_sim::{InstanceFilter, Intervention, InterventionPlan, SimConfig};
use aid_trace::MethodId;

/// Safe plans for an arbitrary case program: structural interventions only
/// (scheduling, delays, suppression) — nothing that requires a purity
/// marking on a specific method.
fn safe_plans(n_methods: usize) -> Vec<InterventionPlan> {
    let m = |i: usize| MethodId::from_raw((i % n_methods) as u32);
    vec![
        InterventionPlan::single(Intervention::SerializeMethods { a: m(0), b: m(1) }),
        InterventionPlan::single(Intervention::DelayStart {
            method: m(1),
            instance: InstanceFilter::All,
            ticks: 7,
        }),
        InterventionPlan::single(Intervention::DelayEnd {
            method: m(2),
            instance: InstanceFilter::Only(0),
            ticks: 4,
        }),
        InterventionPlan::single(Intervention::SuppressFlaky {
            method: m(3),
            instance: InstanceFilter::All,
        }),
        InterventionPlan::single(Intervention::ForceOrder {
            first: m(0),
            then: m(2),
            instance: InstanceFilter::All,
        }),
        {
            let mut p = InterventionPlan::empty();
            p.push(Intervention::DelayStart {
                method: m(0),
                instance: InstanceFilter::All,
                ticks: 3,
            });
            p.push(Intervention::SuppressFlaky {
                method: m(1),
                instance: InstanceFilter::All,
            });
            p
        },
    ]
}

#[test]
fn six_case_studies_trace_identically_on_both_backends() {
    let cfg = SimConfig::default();
    for case in aid_cases::all_cases() {
        let n_methods = case.program.methods.len();
        let tree = TreeWalkBackend::new(case.program.clone());
        let byte = BytecodeBackend::new(&case.program);
        let mut plans = vec![InterventionPlan::empty()];
        plans.extend(safe_plans(n_methods));
        for (pi, plan) in plans.iter().enumerate() {
            for seed in 0..40u64 {
                let a = tree
                    .try_run(seed, plan, &cfg)
                    .unwrap_or_else(|e| panic!("{}: tree-walk trapped: {e}", case.name));
                let b = byte
                    .try_run(seed, plan, &cfg)
                    .unwrap_or_else(|e| panic!("{}: VM trapped: {e}", case.name));
                assert_eq!(
                    a, b,
                    "{} plan {pi} seed {seed}: backends diverged",
                    case.name
                );
            }
        }
    }
}
