//! The Approximate Causal DAG (Section 4).
//!
//! Nodes are the safely-intervenable fully-discriminative predicates plus
//! the failure indicator F. There is an edge `P1 ; P2` iff P1 temporally
//! precedes P2 (under the configured [`PrecedencePolicy`]) in **every**
//! failed run. Because every run contributes a total order, the
//! intersection is a strict partial order — the relation stored here *is*
//! its own transitive closure, and acyclicity holds by construction.
//!
//! Predicates with no path to F cannot be causes of the failure and are
//! dropped at construction (this is how the Kafka case study discards 30 of
//! its 72 discriminative predicates before any intervention).

use crate::policy::PrecedencePolicy;
use aid_predicates::{PredicateCatalog, PredicateId, RunObservation};
use aid_util::DenseBitSet;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;

/// The AC-DAG. Immutable after construction: the intervention algorithms
/// track pruning in their own candidate pools.
#[derive(Clone, Debug)]
pub struct AcDag {
    /// Nodes, in deterministic order; the failure indicator is always last.
    nodes: Vec<PredicateId>,
    index: BTreeMap<PredicateId, usize>,
    /// `closure[i]` = indices j with `nodes[i] ; nodes[j]` (strict).
    closure: Vec<DenseBitSet>,
    /// Candidates dropped because they have no path to F.
    dropped: Vec<PredicateId>,
}

impl PartialEq for AcDag {
    /// Structural equality: same nodes in the same order, same reachability,
    /// same dropped set (`index` is derived from `nodes`). This is what the
    /// incremental store's equivalence contract asserts against batch
    /// reconstruction.
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.closure == other.closure && self.dropped == other.dropped
    }
}

/// Incrementally accumulates the all-failed-runs precedence intersection
/// that defines an [`AcDag`]. [`AcDag::build`] is a fold of every failed
/// observation through [`AcDagBuilder::add_run`]; long-lived consumers
/// (`aid_store`'s `StoreView`) keep a builder alive and fold failed runs in
/// as they arrive, rebuilding only when the candidate set itself changes.
#[derive(Clone, Debug)]
pub struct AcDagBuilder {
    /// Sorted, deduped candidates with the failure indicator last.
    all: Vec<PredicateId>,
    /// `precedes[i][j]` accumulates "i before j in every failed run seen".
    precedes: Vec<DenseBitSet>,
    /// Failed runs folded in so far.
    runs: usize,
}

impl AcDagBuilder {
    /// Starts an empty intersection over `candidates` + `failure`.
    pub fn new(candidates: &[PredicateId], failure: PredicateId) -> AcDagBuilder {
        let mut all: Vec<PredicateId> = candidates.to_vec();
        all.sort();
        all.dedup();
        all.retain(|&p| p != failure);
        all.push(failure);
        let n = all.len();
        // Before any run, every ordered pair is still possible.
        let mut precedes: Vec<DenseBitSet> = vec![DenseBitSet::full(n); n];
        for (i, row) in precedes.iter_mut().enumerate() {
            row.remove(i);
        }
        AcDagBuilder {
            all,
            precedes,
            runs: 0,
        }
    }

    /// The candidate nodes (everything but F), in node order.
    pub fn candidates(&self) -> &[PredicateId] {
        &self.all[..self.all.len() - 1]
    }

    /// The failure indicator.
    pub fn failure(&self) -> PredicateId {
        *self.all.last().expect("builder always holds F")
    }

    /// Failed runs folded in so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Folds one **failed** run's observation into the intersection.
    ///
    /// Panics if a node is not observed in the run (candidates must be
    /// fully discriminative).
    pub fn add_run(
        &mut self,
        catalog: &PredicateCatalog,
        run: &RunObservation,
        policy: &dyn PrecedencePolicy,
    ) {
        debug_assert!(run.failed, "only failed runs define precedence");
        let n = self.all.len();
        // Sort keys under the policy; every candidate must be observed.
        let keys: Vec<(u64, u64, u64, u32)> = self
            .all
            .iter()
            .map(|&p| {
                let w = run.windows[p.index()].unwrap_or_else(|| {
                    panic!(
                        "predicate {:?} not observed in a failed run; AC-DAG \
                         requires fully-discriminative candidates",
                        p
                    )
                });
                policy.key(&catalog.get(p).kind, w, p.raw())
            })
            .collect();
        for i in 0..n {
            for j in 0..n {
                if i != j && keys[i] >= keys[j] {
                    self.precedes[i].remove(j);
                }
            }
        }
        self.runs += 1;
    }

    /// Materializes the AC-DAG from the intersection accumulated so far
    /// (the builder stays usable — more runs can be folded in after).
    ///
    /// Panics if no run has been added: an empty intersection would claim
    /// every ordering holds.
    pub fn build(&self) -> AcDag {
        assert!(self.runs > 0, "AC-DAG requires at least one failed run");
        let n = self.all.len();
        // Keep only nodes with a path to F (F itself stays).
        let f_idx = n - 1;
        let keep: Vec<usize> = (0..n)
            .filter(|&i| i == f_idx || self.precedes[i].contains(f_idx))
            .collect();
        let dropped: Vec<PredicateId> = (0..n)
            .filter(|i| !keep.contains(i))
            .map(|i| self.all[i])
            .collect();

        let nodes: Vec<PredicateId> = keep.iter().map(|&i| self.all[i]).collect();
        let m = nodes.len();
        let mut closure = vec![DenseBitSet::new(m); m];
        for (new_i, &old_i) in keep.iter().enumerate() {
            for (new_j, &old_j) in keep.iter().enumerate() {
                if self.precedes[old_i].contains(old_j) {
                    closure[new_i].insert(new_j);
                }
            }
        }
        let index = nodes.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        AcDag {
            nodes,
            index,
            closure,
            dropped,
        }
    }
}

impl AcDag {
    /// Builds the AC-DAG from fully-discriminative candidates and the
    /// failure predicate, using the failed runs' observation windows.
    ///
    /// Panics if a candidate is not observed in some failed run (candidates
    /// must be fully discriminative) or if there are no failed runs.
    pub fn build(
        candidates: &[PredicateId],
        failure: PredicateId,
        catalog: &PredicateCatalog,
        observations: &[RunObservation],
        policy: &dyn PrecedencePolicy,
    ) -> AcDag {
        let mut builder = AcDagBuilder::new(candidates, failure);
        for run in observations.iter().filter(|o| o.failed) {
            builder.add_run(catalog, run, policy);
        }
        builder.build()
    }

    /// Builds an AC-DAG directly from an intended edge list (the constructor
    /// used by synthetic workloads and algorithm fixtures, where the DAG
    /// shape is the experiment's independent variable). Edges are expanded
    /// to their transitive closure; candidates without a path to `failure`
    /// are dropped, like in [`AcDag::build`]. Panics on cycles.
    pub fn from_edges(
        candidates: &[PredicateId],
        failure: PredicateId,
        edges: &[(PredicateId, PredicateId)],
    ) -> AcDag {
        let mut all: Vec<PredicateId> = candidates.to_vec();
        all.sort();
        all.dedup();
        all.retain(|&p| p != failure);
        all.push(failure);
        let n = all.len();
        let idx: BTreeMap<PredicateId, usize> =
            all.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let mut closure = vec![DenseBitSet::new(n); n];
        for &(a, b) in edges {
            let (Some(&i), Some(&j)) = (idx.get(&a), idx.get(&b)) else {
                panic!("edge ({a:?}, {b:?}) references unknown node");
            };
            closure[i].insert(j);
        }
        // Floyd–Warshall style closure over bitset rows.
        for k in 0..n {
            for i in 0..n {
                if closure[i].contains(k) {
                    let row = closure[k].clone();
                    closure[i].union_with(&row);
                }
            }
        }
        for (i, row) in closure.iter().enumerate() {
            assert!(!row.contains(i), "cycle through node {:?}", all[i]);
        }
        let f_idx = n - 1;
        let keep: Vec<usize> = (0..n)
            .filter(|&i| i == f_idx || closure[i].contains(f_idx))
            .collect();
        let dropped: Vec<PredicateId> = (0..n)
            .filter(|i| !keep.contains(i))
            .map(|i| all[i])
            .collect();
        let nodes: Vec<PredicateId> = keep.iter().map(|&i| all[i]).collect();
        let m = nodes.len();
        let mut kept_closure = vec![DenseBitSet::new(m); m];
        for (new_i, &old_i) in keep.iter().enumerate() {
            for (new_j, &old_j) in keep.iter().enumerate() {
                if closure[old_i].contains(old_j) {
                    kept_closure[new_i].insert(new_j);
                }
            }
        }
        let index = nodes.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        AcDag {
            nodes,
            index,
            closure: kept_closure,
            dropped,
        }
    }

    /// All nodes (failure last).
    pub fn nodes(&self) -> &[PredicateId] {
        &self.nodes
    }

    /// The candidate nodes (everything but F).
    pub fn candidates(&self) -> &[PredicateId] {
        &self.nodes[..self.nodes.len() - 1]
    }

    /// The failure indicator.
    pub fn failure(&self) -> PredicateId {
        *self.nodes.last().expect("non-empty dag")
    }

    /// Candidates dropped at construction for having no path to F.
    pub fn dropped(&self) -> &[PredicateId] {
        &self.dropped
    }

    /// Whether the DAG contains `p`.
    pub fn contains(&self, p: PredicateId) -> bool {
        self.index.contains_key(&p)
    }

    /// `p ; q` (strict reachability). False if either is absent.
    pub fn reaches(&self, p: PredicateId, q: PredicateId) -> bool {
        match (self.index.get(&p), self.index.get(&q)) {
            (Some(&i), Some(&j)) => self.closure[i].contains(j),
            _ => false,
        }
    }

    /// Descendants of `p` within `universe` (strict).
    pub fn descendants_within(&self, p: PredicateId, universe: &[PredicateId]) -> Vec<PredicateId> {
        universe
            .iter()
            .copied()
            .filter(|&q| self.reaches(p, q))
            .collect()
    }

    /// The minimal elements of `set`: nodes with no predecessor inside
    /// `set`. These are "the predicates at the lowest topological level"
    /// (Algorithm 2 line 4).
    pub fn minimal_of(&self, set: &[PredicateId]) -> Vec<PredicateId> {
        set.iter()
            .copied()
            .filter(|&q| !set.iter().any(|&p| p != q && self.reaches(p, q)))
            .collect()
    }

    /// Sorts `set` into a topological linearization, breaking incomparable
    /// ties with `rng` (GIWP "resolving ties randomly"). The sort key is the
    /// ancestor count within the full DAG, which linearizes the partial
    /// order; ties are shuffled.
    pub fn topo_sort<R: Rng>(&self, set: &mut [PredicateId], rng: &mut R) {
        let anc_count = |p: PredicateId| -> usize {
            let &i = self.index.get(&p).expect("node in dag");
            (0..self.nodes.len())
                .filter(|&j| self.closure[j].contains(i))
                .count()
        };
        let mut keyed: Vec<(usize, PredicateId)> = set.iter().map(|&p| (anc_count(p), p)).collect();
        // Shuffle first so equal keys land in random relative order.
        keyed.shuffle(rng);
        keyed.sort_by_key(|&(k, _)| k);
        for (dst, (_, p)) in set.iter_mut().zip(keyed) {
            *dst = p;
        }
    }

    /// A deterministic topological linearization of `set` (ancestor count,
    /// ties by id) — used to render final causal paths.
    pub fn topo_sorted(&self, set: &[PredicateId]) -> Vec<PredicateId> {
        let mut keyed: Vec<(usize, PredicateId)> = set
            .iter()
            .map(|&p| {
                let &i = self.index.get(&p).expect("node in dag");
                let anc = (0..self.nodes.len())
                    .filter(|&j| self.closure[j].contains(i))
                    .count();
                (anc, p)
            })
            .collect();
        keyed.sort();
        keyed.into_iter().map(|(_, p)| p).collect()
    }

    /// Transitive-reduction (Hasse) edges, for display/DOT export: edges
    /// `(p, q)` with `p ; q` and no witness `k` between them.
    pub fn reduction_edges(&self) -> Vec<(PredicateId, PredicateId)> {
        let n = self.nodes.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in self.closure[i].iter() {
                let has_witness = self.closure[i]
                    .iter()
                    .any(|k| k != j && self.closure[k].contains(j));
                if !has_witness {
                    out.push((self.nodes[i], self.nodes[j]));
                }
            }
        }
        out
    }

    /// The branches at a junction (Algorithm 2 lines 8–12): for each
    /// minimal element P of `set`, the branch is P plus every descendant of
    /// P in `set` that is *not* a descendant of another minimal element.
    pub fn branches(&self, set: &[PredicateId]) -> Vec<Vec<PredicateId>> {
        let minimal = self.minimal_of(set);
        minimal
            .iter()
            .map(|&p| {
                let mut branch = vec![p];
                for &q in set {
                    if q == p || !self.reaches(p, q) {
                        continue;
                    }
                    let shared = minimal
                        .iter()
                        .any(|&p2| p2 != p && (p2 == q || self.reaches(p2, q)));
                    if !shared {
                        branch.push(q);
                    }
                }
                branch
            })
            .collect()
    }

    /// Number of nodes including F.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has only the failure node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// GraphViz DOT rendering (transitive reduction), with human-readable
    /// labels resolved through the trace set.
    pub fn to_dot(&self, catalog: &PredicateCatalog, set: &aid_trace::TraceSet) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph acdag {\n  rankdir=TB;\n");
        for &p in &self.nodes {
            let label = catalog.describe(p, set).replace('"', "'");
            let shape = if p == self.failure() {
                "doublecircle"
            } else {
                "box"
            };
            writeln!(s, "  p{} [shape={shape}, label=\"{label}\"];", p.raw()).unwrap();
        }
        for (a, b) in self.reduction_edges() {
            writeln!(s, "  p{} -> p{};", a.raw(), b.raw()).unwrap();
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::TypeAwarePolicy;
    use aid_predicates::{MethodInstance, Predicate, PredicateKind};
    use aid_trace::MethodId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Catalog of n "slow" predicates + failure; observations place windows
    /// per the given per-run anchor times (point windows).
    fn fixture(
        anchors: &[Vec<u64>],
    ) -> (
        PredicateCatalog,
        Vec<RunObservation>,
        Vec<PredicateId>,
        PredicateId,
    ) {
        let n = anchors[0].len();
        let mut catalog = PredicateCatalog::new();
        let mut ids = Vec::new();
        for m in 0..n - 1 {
            ids.push(catalog.insert(Predicate {
                kind: PredicateKind::RunsTooSlow {
                    site: MethodInstance::new(MethodId::from_raw(m as u32), 0),
                    threshold: 1,
                },
                safe: true,
                action: None,
            }));
        }
        let failure = catalog.insert(Predicate {
            kind: PredicateKind::Failure {
                signature: aid_trace::FailureSignature {
                    kind: "F".into(),
                    method: MethodId::from_raw(0),
                },
            },
            safe: true,
            action: None,
        });
        let observations = anchors
            .iter()
            .map(|run| RunObservation {
                failed: true,
                observed: DenseBitSet::full(n),
                windows: run.iter().map(|&t| Some((t, t))).collect(),
            })
            .collect();
        (catalog, observations, ids, failure)
    }

    #[test]
    fn consistent_order_gives_chain() {
        // Three predicates always in order 0,1,2 then F.
        let (catalog, obs, ids, f) = fixture(&[vec![10, 20, 30, 99], vec![5, 6, 7, 50]]);
        let dag = AcDag::build(&ids, f, &catalog, &obs, &TypeAwarePolicy);
        assert_eq!(dag.len(), 4);
        assert!(dag.reaches(ids[0], ids[1]));
        assert!(dag.reaches(ids[1], ids[2]));
        assert!(dag.reaches(ids[0], ids[2]), "closure is transitive");
        assert!(dag.reaches(ids[2], f));
        assert!(!dag.reaches(ids[1], ids[0]));
        // Hasse edges = the chain only.
        assert_eq!(dag.reduction_edges().len(), 3);
    }

    #[test]
    fn conflicting_orders_drop_the_edge() {
        // 0 before 1 in run A, 1 before 0 in run B: incomparable.
        let (catalog, obs, ids, f) = fixture(&[vec![10, 20, 99], vec![20, 10, 99]]);
        let dag = AcDag::build(&ids, f, &catalog, &obs, &TypeAwarePolicy);
        assert!(!dag.reaches(ids[0], ids[1]));
        assert!(!dag.reaches(ids[1], ids[0]));
        assert!(dag.reaches(ids[0], f) && dag.reaches(ids[1], f));
        // Both are minimal: a junction.
        let min = dag.minimal_of(&[ids[0], ids[1]]);
        assert_eq!(min.len(), 2);
    }

    #[test]
    fn failure_is_terminal_for_every_anchor_time() {
        // Even a predicate whose window closes after the recorded run
        // duration still precedes F: the failure indicator is terminal by
        // definition (the policy pins its key at the maximum).
        let (catalog, obs, ids, f) = fixture(&[vec![10, 200, 99], vec![10, 20, 99]]);
        let dag = AcDag::build(&ids, f, &catalog, &obs, &TypeAwarePolicy);
        assert!(dag.contains(ids[0]) && dag.contains(ids[1]));
        assert!(dag.reaches(ids[0], f) && dag.reaches(ids[1], f));
        assert!(dag.dropped().is_empty());
    }

    #[test]
    fn nodes_not_reaching_failure_are_dropped_from_edges() {
        // `from_edges` drops candidates with no path to F (the Kafka case's
        // "30 predicates with no causal path to the failure").
        let a = PredicateId::from_raw(0);
        let b = PredicateId::from_raw(1);
        let f = PredicateId::from_raw(9);
        let dag = AcDag::from_edges(&[a, b], f, &[(a, f)]);
        assert!(dag.contains(a));
        assert!(!dag.contains(b));
        assert_eq!(dag.dropped(), &[b]);
    }

    #[test]
    fn branches_partition_junction_descendants() {
        // Diamond: 0 → {1, 2} → 3 → F; 1 and 2 incomparable; 4 under 1 only.
        let runs = vec![
            vec![10, 20, 30, 40, 25, 99], // 1 before 2
            vec![10, 30, 20, 40, 35, 99], // 2 before 1
        ];
        let (catalog, obs, ids, f) = fixture(&runs);
        let dag = AcDag::build(&ids, f, &catalog, &obs, &TypeAwarePolicy);
        // After removing 0, minimal = {1, 2}; 4 belongs to 1's branch in
        // run-consistent order? 4 is after 1 in run A (25>20) but before in
        // run B (35>30 — after too). So 1;4. And 2;4? run A: 30>25 no.
        let set = vec![ids[1], ids[2], ids[3], ids[4]];
        let branches = dag.branches(&set);
        assert_eq!(branches.len(), 2);
        let b1 = branches.iter().find(|b| b[0] == ids[1]).unwrap();
        assert!(b1.contains(&ids[4]));
        // 3 is reachable from both minimals → in neither branch.
        assert!(branches.iter().all(|b| !b.contains(&ids[3])));
    }

    #[test]
    fn topo_sort_respects_partial_order() {
        let (catalog, obs, ids, f) = fixture(&[vec![10, 20, 30, 99], vec![5, 6, 7, 50]]);
        let dag = AcDag::build(&ids, f, &catalog, &obs, &TypeAwarePolicy);
        let mut rng = StdRng::seed_from_u64(1);
        let mut set = vec![ids[2], ids[0], ids[1]];
        dag.topo_sort(&mut set, &mut rng);
        assert_eq!(set, vec![ids[0], ids[1], ids[2]]);
    }

    #[test]
    fn incremental_builder_matches_batch_at_every_prefix() {
        let runs = vec![
            vec![10, 20, 30, 40, 25, 99],
            vec![10, 30, 20, 40, 35, 99],
            vec![11, 21, 31, 41, 26, 90],
        ];
        let (catalog, obs, ids, f) = fixture(&runs);
        let mut builder = AcDagBuilder::new(&ids, f);
        for k in 0..obs.len() {
            builder.add_run(&catalog, &obs[k], &TypeAwarePolicy);
            let batch = AcDag::build(&ids, f, &catalog, &obs[..=k], &TypeAwarePolicy);
            assert_eq!(builder.build(), batch, "prefix of {} runs diverged", k + 1);
            assert_eq!(builder.runs(), k + 1);
        }
        assert_eq!(builder.candidates(), &ids[..]);
        assert_eq!(builder.failure(), f);
    }

    #[test]
    #[should_panic(expected = "at least one failed run")]
    fn builder_refuses_to_build_with_no_runs() {
        let (_, _, ids, f) = fixture(&[vec![10, 99]]);
        AcDagBuilder::new(&ids, f).build();
    }

    #[test]
    fn dot_renders_every_node() {
        let (catalog, obs, ids, f) = fixture(&[vec![10, 20, 99]]);
        let dag = AcDag::build(&ids, f, &catalog, &obs, &TypeAwarePolicy);
        let mut ts = aid_trace::TraceSet::new();
        ts.method("A");
        ts.method("B");
        let dot = dag.to_dot(&catalog, &ts);
        assert!(dot.contains("doublecircle"));
        assert!(dot.matches("->").count() >= 2);
    }
}
