//! Temporal-precedence policies (Section 4).
//!
//! Deciding whether predicate P1 "temporally precedes" P2 is subtle when
//! predicates hold over *time windows*: the paper's Case 1 (nested slow
//! methods order by **end** time) and Case 2 (late starts order by **start**
//! time) show the correct rule depends on predicate semantics.
//!
//! To keep the guarantee that precedence never creates cycles, a policy here
//! is not a pairwise rule but a **per-run sort key**: each observed predicate
//! gets an anchor time derived from its kind and window, and the run's
//! precedence order is the total order on `(anchor, lo, hi, id)`. A total
//! order per run makes the all-runs intersection a strict partial order —
//! i.e. the AC-DAG is acyclic by construction, for *any* policy ("AID works
//! with any policy of deciding precedence, as long as it does not create
//! cycles").

use aid_predicates::PredicateKind;
use aid_trace::Time;

/// Which end of the observation window anchors a predicate in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Anchor {
    /// The window's start: the predicate "happens" when it first manifests
    /// (races, order violations).
    Start,
    /// The window's end: the predicate "happens" at completion (slowness is
    /// known at return; exceptions surface at the throw).
    End,
}

/// A precedence policy assigns an anchor per predicate kind.
pub trait PrecedencePolicy {
    /// The anchor for this predicate kind.
    fn anchor(&self, kind: &PredicateKind) -> Anchor;

    /// The sort key of an observation under this policy. On equal anchors
    /// the *later-starting* (inner) predicate precedes: an exception that
    /// unwinds a call stack closes every frame at the same tick, and the
    /// innermost throw is the cause of the outer failures (Case 1's nesting
    /// argument taken to its tie limit).
    fn key(&self, kind: &PredicateKind, window: (Time, Time), id: u32) -> (Time, Time, Time, u32) {
        // The failure indicator is, by definition, the terminal event: it
        // must follow every predicate, including exception predicates whose
        // windows close on the very tick the run dies.
        if matches!(kind, PredicateKind::Failure { .. }) {
            return (Time::MAX, Time::MAX, Time::MAX, id);
        }
        let (lo, hi) = window;
        let a = match self.anchor(kind) {
            Anchor::Start => lo,
            Anchor::End => hi,
        };
        (a, Time::MAX - lo, hi, id)
    }
}

/// The default policy, following the paper's case analysis:
///
/// * duration/exception/return-shaped predicates anchor at the **end** of
///   their window (Case 1: "bar() running slow" causes "foo() running slow"
///   and must sort first, which end-time ordering gives since bar ends
///   before foo);
/// * race/order/conjunction predicates anchor at the **start** of their
///   window (the conflict exists from its first manifestation — Case 2's
///   start-time flavour);
/// * the failure indicator anchors at its end (the end of the run).
#[derive(Clone, Copy, Debug, Default)]
pub struct TypeAwarePolicy;

impl PrecedencePolicy for TypeAwarePolicy {
    fn anchor(&self, kind: &PredicateKind) -> Anchor {
        match kind {
            PredicateKind::DataRace { .. }
            | PredicateKind::OrderViolation { .. }
            | PredicateKind::Conjunction { .. } => Anchor::Start,
            PredicateKind::MethodFails { .. }
            | PredicateKind::RunsTooSlow { .. }
            | PredicateKind::RunsTooFast { .. }
            | PredicateKind::WrongReturn { .. }
            | PredicateKind::ValueCollision { .. }
            | PredicateKind::Failure { .. } => Anchor::End,
        }
    }
}

/// A deliberately naive policy ordering everything by window start — used by
/// ablation benchmarks to show the effect of policy choice.
#[derive(Clone, Copy, Debug, Default)]
pub struct StartTimePolicy;

impl PrecedencePolicy for StartTimePolicy {
    fn anchor(&self, _kind: &PredicateKind) -> Anchor {
        Anchor::Start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_predicates::MethodInstance;
    use aid_trace::MethodId;

    fn slow(m: u32) -> PredicateKind {
        PredicateKind::RunsTooSlow {
            site: MethodInstance::new(MethodId::from_raw(m), 0),
            threshold: 1,
        }
    }

    #[test]
    fn nested_slow_methods_order_by_end() {
        // foo [0, 100] calls bar [10, 90]: bar's slowness causes foo's.
        let p = TypeAwarePolicy;
        let foo = p.key(&slow(0), (0, 100), 0);
        let bar = p.key(&slow(1), (10, 90), 1);
        assert!(bar < foo, "bar (inner) must precede foo (outer)");
    }

    #[test]
    fn race_anchors_at_start() {
        let p = TypeAwarePolicy;
        let race = PredicateKind::DataRace {
            a: MethodInstance::new(MethodId::from_raw(0), 0),
            b: MethodInstance::new(MethodId::from_raw(1), 0),
            object: aid_trace::ObjectId::from_raw(0),
        };
        // Race window [20, 80]; the victim method fails over [10, 90].
        let r = p.key(&race, (20, 80), 0);
        let f = p.key(
            &PredicateKind::MethodFails {
                site: MethodInstance::new(MethodId::from_raw(0), 0),
                kind: "X".into(),
            },
            (10, 90),
            1,
        );
        assert!(r < f, "the race precedes the failure it provokes");
    }

    #[test]
    fn keys_are_total_even_for_identical_windows() {
        let p = TypeAwarePolicy;
        let a = p.key(&slow(0), (5, 10), 0);
        let b = p.key(&slow(1), (5, 10), 1);
        assert!(a < b, "id breaks ties deterministically");
    }
}
