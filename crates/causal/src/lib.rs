//! Approximate causal analysis: the AC-DAG (Section 4).
//!
//! Temporal precedence is necessary (but not sufficient) for causality, so a
//! DAG built from "P1 precedes P2 in every failed run" over-approximates the
//! true causal graph: it is guaranteed to contain every true causal edge
//! among the fully-discriminative predicates, plus spurious edges that the
//! intervention algorithms in `aid-core` later prune.

pub mod graph;
pub mod policy;

pub use graph::{AcDag, AcDagBuilder};
pub use policy::{Anchor, PrecedencePolicy, StartTimePolicy, TypeAwarePolicy};
