//! Criterion microbenchmark: virtual-machine throughput — single runs of
//! the Npgsql case program, with and without interventions.

use aid_cases::npgsql;
use aid_sim::{InterventionPlan, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_runs(c: &mut Criterion) {
    let case = npgsql::case();
    let sim = Simulator::new(case.program.clone());
    let mut seed = 0u64;
    c.bench_function("sim_run_npgsql", |b| {
        b.iter(|| {
            seed += 1;
            sim.run(seed, &InterventionPlan::empty())
        });
    });
    let plan = InterventionPlan::single(aid_sim::Intervention::SerializeMethods {
        a: aid_trace::MethodId::from_raw(0),
        b: aid_trace::MethodId::from_raw(1),
    });
    c.bench_function("sim_run_npgsql_serialized", |b| {
        b.iter(|| {
            seed += 1;
            sim.run(seed, &plan)
        });
    });
}

criterion_group!(benches, bench_runs);
criterion_main!(benches);
