//! Criterion microbenchmark: virtual-machine throughput — single runs of
//! the Npgsql case program, with and without interventions, on both
//! execution backends — plus a self-timed tree-walk vs bytecode comparison
//! over the full case-study suite that records `sim_*` keys into
//! `BENCH_sim.json` at the repo root (compared by
//! `cargo run -p aid_bench --bin benchdiff`).

use aid_bench::snapshot;
use aid_cases::npgsql;
use aid_sim::{Backend, InterventionPlan, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn bench_runs(c: &mut Criterion) {
    let case = npgsql::case();
    let plan = InterventionPlan::single(aid_sim::Intervention::SerializeMethods {
        a: aid_trace::MethodId::from_raw(0),
        b: aid_trace::MethodId::from_raw(1),
    });
    for backend in [Backend::TreeWalk, Backend::Bytecode] {
        let sim = Simulator::new(case.program.clone()).with_backend(backend);
        let mut seed = 0u64;
        c.bench_function(&format!("sim_run_npgsql_{backend}"), |b| {
            b.iter(|| {
                seed += 1;
                sim.run(seed, &InterventionPlan::empty())
            });
        });
        c.bench_function(&format!("sim_run_npgsql_serialized_{backend}"), |b| {
            b.iter(|| {
                seed += 1;
                sim.run(seed, &plan)
            });
        });
    }
}

/// Sustained throughput over the whole case-study suite, in case runs per
/// second (one "iteration" runs every case program once).
fn suite_runs_per_s(sims: &[Simulator], budget: Duration) -> f64 {
    let plan = InterventionPlan::empty();
    let mut runs = 0u64;
    let mut seed = 1_000u64;
    let start = Instant::now();
    while start.elapsed() < budget {
        for _ in 0..10 {
            seed += 1;
            for sim in sims {
                sim.run(seed, &plan);
            }
        }
        runs += 10 * sims.len() as u64;
    }
    runs as f64 / start.elapsed().as_secs_f64()
}

/// Times tree-walk vs bytecode head-to-head over all six case studies and
/// merges the result into `BENCH_sim.json`.
///
/// Measurement: interleaved best-of-5 — short alternating rounds per
/// backend, keeping each backend's best round. On a noisy machine the
/// absolute rates still drift between invocations, but taking each side's
/// best from interleaved rounds keeps the *ratio* stable to a few percent,
/// which is what the CI diff guards.
fn snapshot_backends(_c: &mut Criterion) {
    let budget = Duration::from_millis(
        std::env::var("AID_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300),
    );
    let plan = InterventionPlan::empty();
    let build = |backend: Backend| -> Vec<Simulator> {
        aid_cases::all_cases()
            .into_iter()
            .map(|c| Simulator::new(c.program).with_backend(backend))
            .collect()
    };
    let tree_sims = build(Backend::TreeWalk);
    let byte_sims = build(Backend::Bytecode);
    // Warm up: first runs build each backend (compile + arenas).
    for seed in 0..20 {
        for sim in tree_sims.iter().chain(&byte_sims) {
            sim.run(seed, &plan);
        }
    }
    let (mut tree, mut byte) = (0f64, 0f64);
    for _ in 0..5 {
        tree = tree.max(suite_runs_per_s(&tree_sims, budget));
        byte = byte.max(suite_runs_per_s(&byte_sims, budget));
    }
    let speedup = byte / tree;
    let path = snapshot::merge_write(
        "BENCH_sim.json",
        &[
            ("sim_treewalk_runs_per_s".to_string(), tree),
            ("sim_bytecode_runs_per_s".to_string(), byte),
            ("sim_bytecode_speedup".to_string(), speedup),
        ],
    );
    println!(
        "snapshot: tree-walk {tree:.0} runs/s, bytecode {byte:.0} runs/s \
         ({speedup:.2}x) over {} case programs -> {}",
        tree_sims.len(),
        path.display()
    );
}

/// Scheduler health on the event-dense healthtelemetry case: the fraction
/// of post-frame-pop wakeups the bytecode VM handled by incremental
/// ready-set repair instead of a full rescan. The seed batch is fixed, so
/// the ratio is deterministic, and the `_hit_rate` suffix puts it under
/// `benchdiff`'s gated ratio keys — a scheduler change that silently falls
/// back to full rescans fails the gate.
fn snapshot_sched_telemetry(_c: &mut Criterion) {
    use aid_sim::{compile, SimConfig, Vm};
    let case = aid_cases::healthtelemetry::case();
    let prog = compile(&case.program);
    let cfg = SimConfig::default();
    let plan = InterventionPlan::empty();
    let mut vm = Vm::new();
    let (mut scans, mut repairs) = (0u64, 0u64);
    for seed in 1..=200u64 {
        vm.run(&prog, &plan, &cfg, seed)
            .expect("healthtelemetry case runs clean");
        let (s, r) = vm.sched_telemetry();
        scans += s;
        repairs += r;
    }
    let ratio = repairs as f64 / (scans + repairs).max(1) as f64;
    let path = snapshot::merge_write(
        "BENCH_sim.json",
        &[("sim_sched_repair_hit_rate".to_string(), ratio)],
    );
    println!(
        "snapshot: healthtelemetry scheduler {repairs} repairs / {scans} rescans \
         ({ratio:.3} repaired) -> {}",
        path.display()
    );
}

criterion_group!(
    benches,
    bench_runs,
    snapshot_backends,
    snapshot_sched_telemetry
);
criterion_main!(benches);
