//! Criterion microbenchmark: AC-DAG construction from observation windows
//! as the predicate count N grows.

use aid_causal::{AcDag, TypeAwarePolicy};
use aid_predicates::{
    MethodInstance, Predicate, PredicateCatalog, PredicateId, PredicateKind, RunObservation,
};
use aid_trace::MethodId;
use aid_util::DenseBitSet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fixture(
    n: usize,
    runs: usize,
) -> (
    PredicateCatalog,
    Vec<RunObservation>,
    Vec<PredicateId>,
    PredicateId,
) {
    let mut catalog = PredicateCatalog::new();
    let mut ids = Vec::new();
    for m in 0..n {
        ids.push(catalog.insert(Predicate {
            kind: PredicateKind::RunsTooSlow {
                site: MethodInstance::new(MethodId::from_raw(m as u32), 0),
                threshold: 1,
            },
            safe: true,
            action: None,
        }));
    }
    let failure = catalog.insert(Predicate {
        kind: PredicateKind::Failure {
            signature: aid_trace::FailureSignature {
                kind: "F".into(),
                method: MethodId::from_raw(0),
            },
        },
        safe: true,
        action: None,
    });
    let mut rng = StdRng::seed_from_u64(7);
    let observations = (0..runs)
        .map(|_| {
            let windows: Vec<Option<(u64, u64)>> = (0..n)
                .map(|i| {
                    let base = (i as u64) * 10 + rng.random_range(0..5);
                    Some((base, base + rng.random_range(1..8)))
                })
                .chain(std::iter::once(Some((100_000, 100_000))))
                .collect();
            RunObservation {
                failed: true,
                observed: DenseBitSet::full(n + 1),
                windows,
            }
        })
        .collect();
    (catalog, observations, ids, failure)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("acdag_build");
    for n in [16usize, 64, 128, 284] {
        let (catalog, obs, ids, failure) = fixture(n, 50);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| AcDag::build(&ids, failure, &catalog, &obs, &TypeAwarePolicy));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
