//! Criterion benchmark: multi-session discovery throughput, serial
//! re-execution vs the memoizing 1/4-worker engine, on the Figure-8
//! synthetic workload (ground truths compiled to real simulator programs —
//! the same `aid_engine::workload` the acceptance tests assert on).
//!
//! The workload is the repeated-triage shape the engine is built for: a
//! handful of distinct applications, each debugged several times (think
//! re-runs across a flaky CI day). Serial execution pays for every run
//! every time; the engine executes each distinct (program, intervention
//! set, seed) run once and answers the rest from the intervention cache,
//! overlapping the cold runs across workers. The acceptance bar for this
//! subsystem is engine ≥ 2x serial on a 4-worker pool — asserted in
//! `crates/engine/tests/determinism.rs` and measured here.

use aid_core::{discover, Strategy};
use aid_engine::workload::{compiled_figure8_apps, Figure8App};
use aid_engine::{DiscoveryJob, Engine, EngineConfig};
use aid_sim::SimExecutor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

const RUNS_PER_ROUND: usize = 8;
const DISTINCT_APPS: usize = 3;
const NODE_COST: u64 = 40;
const REPEATS: usize = 4;

fn bench_engine_throughput(c: &mut Criterion) {
    let apps = compiled_figure8_apps(DISTINCT_APPS, NODE_COST);
    let mut group = c.benchmark_group("engine_throughput");
    let sessions = DISTINCT_APPS * REPEATS;

    group.bench_with_input(
        BenchmarkId::new("serial", format!("{sessions}_sessions")),
        &apps,
        |b, apps| {
            b.iter(|| {
                for _ in 0..REPEATS {
                    for app in apps {
                        let mut exec = SimExecutor::new(
                            (*app.sim).clone(),
                            app.analysis.extraction.catalog.clone(),
                            app.analysis.extraction.failure,
                            RUNS_PER_ROUND,
                            1_000_000,
                        );
                        discover(&app.analysis.dag, &mut exec, Strategy::Aid, 3);
                    }
                }
            });
        },
    );

    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new(format!("engine_{workers}w"), format!("{sessions}_sessions")),
            &apps,
            |b, apps: &Vec<Figure8App>| {
                b.iter(|| {
                    // A fresh engine per iteration: the measurement includes
                    // pool spin-up and a cold cache, i.e. the worst case.
                    let engine = Engine::new(EngineConfig {
                        workers,
                        ..EngineConfig::default()
                    });
                    let jobs: Vec<DiscoveryJob> = (0..REPEATS)
                        .flat_map(|r| {
                            apps.iter().enumerate().map(move |(i, app)| {
                                DiscoveryJob::sim(
                                    format!("app{i}-run{r}"),
                                    Arc::new(app.analysis.dag.clone()),
                                    Arc::clone(&app.sim),
                                    Arc::new(app.analysis.extraction.catalog.clone()),
                                    app.analysis.extraction.failure,
                                    RUNS_PER_ROUND,
                                    1_000_000,
                                    Strategy::Aid,
                                    3,
                                )
                            })
                        })
                        .collect();
                    engine.run_all(jobs)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
