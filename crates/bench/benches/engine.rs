//! Criterion benchmark: multi-session discovery throughput, serial
//! re-execution vs the memoizing 1/4-worker engine, on the Figure-8
//! synthetic workload (ground truths compiled to real simulator programs —
//! the same `aid_engine::workload` the acceptance tests assert on).
//!
//! The workload is the repeated-triage shape the engine is built for: a
//! handful of distinct applications, each debugged several times (think
//! re-runs across a flaky CI day). Serial execution pays for every run
//! every time; the engine executes each distinct (program, intervention
//! set, seed) run once and answers the rest from the intervention cache,
//! overlapping the cold runs across workers. The acceptance bar for this
//! subsystem is engine ≥ 2x serial on a 4-worker pool — asserted in
//! `crates/engine/tests/determinism.rs` and measured here.

use aid_bench::snapshot;
use aid_core::{discover, Strategy};
use aid_engine::workload::{compiled_figure8_apps, Figure8App};
use aid_engine::{DiscoveryJob, Engine, EngineConfig};
use aid_sim::SimExecutor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

const RUNS_PER_ROUND: usize = 32;
const DISTINCT_APPS: usize = 3;
// Calibrated for the bytecode backend (matching the ≥2x acceptance test in
// crates/engine/tests/determinism.rs): the VM coalesces compute bursts, so
// per-execution work must be heavier than the tree-walk era's 40/8 for the
// cache-hit economics to outweigh per-session bookkeeping.
const NODE_COST: u64 = 120;
const REPEATS: usize = 6;

fn bench_engine_throughput(c: &mut Criterion) {
    let apps = compiled_figure8_apps(DISTINCT_APPS, NODE_COST);
    let mut group = c.benchmark_group("engine_throughput");
    let sessions = DISTINCT_APPS * REPEATS;

    group.bench_with_input(
        BenchmarkId::new("serial", format!("{sessions}_sessions")),
        &apps,
        |b, apps| {
            b.iter(|| {
                for _ in 0..REPEATS {
                    for app in apps {
                        let mut exec = SimExecutor::new(
                            (*app.sim).clone(),
                            app.analysis.extraction.catalog.clone(),
                            app.analysis.extraction.failure,
                            RUNS_PER_ROUND,
                            1_000_000,
                        );
                        discover(&app.analysis.dag, &mut exec, Strategy::Aid, 3);
                    }
                }
            });
        },
    );

    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new(format!("engine_{workers}w"), format!("{sessions}_sessions")),
            &apps,
            |b, apps: &Vec<Figure8App>| {
                b.iter(|| {
                    // A fresh engine per iteration: the measurement includes
                    // pool spin-up and a cold cache, i.e. the worst case.
                    let engine = Engine::new(EngineConfig {
                        workers,
                        ..EngineConfig::default()
                    });
                    let jobs: Vec<DiscoveryJob> = (0..REPEATS)
                        .flat_map(|r| {
                            apps.iter().enumerate().map(move |(i, app)| {
                                DiscoveryJob::sim(
                                    format!("app{i}-run{r}"),
                                    Arc::new(app.analysis.dag.clone()),
                                    Arc::clone(&app.sim),
                                    Arc::new(app.analysis.extraction.catalog.clone()),
                                    app.analysis.extraction.failure,
                                    RUNS_PER_ROUND,
                                    1_000_000,
                                    Strategy::Aid,
                                    3,
                                )
                            })
                        })
                        .collect();
                    engine.run_all(jobs)
                });
            },
        );
    }
    group.finish();
}

/// One serial pass over the workload: every app re-discovered `REPEATS`
/// times with a fresh executor (no memoization).
fn serial_pass(apps: &[Figure8App]) {
    for _ in 0..REPEATS {
        for app in apps {
            let mut exec = SimExecutor::new(
                (*app.sim).clone(),
                app.analysis.extraction.catalog.clone(),
                app.analysis.extraction.failure,
                RUNS_PER_ROUND,
                1_000_000,
            );
            discover(&app.analysis.dag, &mut exec, Strategy::Aid, 3);
        }
    }
}

/// One engine pass: the same sessions through a fresh 4-worker pool with a
/// cold intervention cache.
fn engine_pass(apps: &[Figure8App]) {
    let engine = Engine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    let jobs: Vec<DiscoveryJob> = (0..REPEATS)
        .flat_map(|r| {
            apps.iter().enumerate().map(move |(i, app)| {
                DiscoveryJob::sim(
                    format!("app{i}-run{r}"),
                    Arc::new(app.analysis.dag.clone()),
                    Arc::clone(&app.sim),
                    Arc::new(app.analysis.extraction.catalog.clone()),
                    app.analysis.extraction.failure,
                    RUNS_PER_ROUND,
                    1_000_000,
                    Strategy::Aid,
                    3,
                )
            })
        })
        .collect();
    engine.run_all(jobs);
}

/// Sustained session throughput of one pass shape.
fn sessions_per_s(apps: &[Figure8App], pass: fn(&[Figure8App]), budget: Duration) -> f64 {
    let mut sessions = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget {
        pass(apps);
        sessions += (DISTINCT_APPS * REPEATS) as u64;
    }
    sessions as f64 / start.elapsed().as_secs_f64()
}

/// Times serial vs 4-worker-engine discovery head-to-head (interleaved
/// best-of-5, like the simulator snapshot) and merges `engine_*` keys into
/// `BENCH_sim.json`.
fn snapshot_engine(_c: &mut Criterion) {
    let budget = Duration::from_millis(
        std::env::var("AID_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300),
    );
    let apps = compiled_figure8_apps(DISTINCT_APPS, NODE_COST);
    // Warm-up pass each, then alternating rounds.
    serial_pass(&apps);
    engine_pass(&apps);
    let (mut serial, mut engine) = (0f64, 0f64);
    for _ in 0..5 {
        serial = serial.max(sessions_per_s(&apps, serial_pass, budget));
        engine = engine.max(sessions_per_s(&apps, engine_pass, budget));
    }
    let speedup = engine / serial;
    let path = snapshot::merge_write(
        "BENCH_sim.json",
        &[
            ("engine_serial_sessions_per_s".to_string(), serial),
            ("engine_4w_sessions_per_s".to_string(), engine),
            ("engine_speedup".to_string(), speedup),
        ],
    );
    println!(
        "snapshot: serial {serial:.1} sessions/s, engine(4w) {engine:.1} \
         sessions/s ({speedup:.2}x) -> {}",
        path.display()
    );
}

criterion_group!(benches, bench_engine_throughput, snapshot_engine);
criterion_main!(benches);
