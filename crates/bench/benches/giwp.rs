//! Criterion microbenchmark: full causal-path discovery on synthetic
//! applications (oracle executor), per strategy.

use aid_core::{discover, OracleExecutor, Strategy};
use aid_synth::{generate, SynthParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery");
    for maxt in [8u32, 24, 42] {
        let params = SynthParams {
            max_threads: maxt,
            ..Default::default()
        };
        let app = generate(&params, 42);
        for strategy in [Strategy::Aid, Strategy::Tagt] {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), format!("maxt{maxt}_n{}", app.n)),
                &app,
                |b, app| {
                    b.iter(|| {
                        let mut oracle = OracleExecutor::new(app.truth.clone());
                        discover(&app.dag, &mut oracle, strategy, 1)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
