//! Criterion microbenchmark: predicate extraction + SD scoring over 100
//! labeled runs of the HealthTelemetry case (the largest catalog).

use aid_cases::healthtelemetry;
use aid_predicates::extract;
use aid_sd::SdReport;
use aid_sim::Simulator;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_extraction(c: &mut Criterion) {
    let case = healthtelemetry::case();
    let sim = Simulator::new(case.program.clone());
    let logs = sim.collect_balanced(50, 50, 60_000);
    c.bench_function("extract_healthtelemetry_100_runs", |b| {
        b.iter(|| extract(&logs, &case.config));
    });
    let ex = extract(&logs, &case.config);
    c.bench_function("sd_score_healthtelemetry", |b| {
        b.iter(|| SdReport::analyze(&ex.catalog, &ex.observations));
    });
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
