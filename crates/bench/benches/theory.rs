//! Criterion microbenchmark: the chain-subset counting DP (search-space
//! analysis) on symmetric AC-DAGs of growing size.

use aid_theory::{chain_count, closure_from_edges};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn symmetric_edges(j: usize, b: usize, n: usize) -> (usize, Vec<(usize, usize)>) {
    let mut edges = Vec::new();
    let mut next = 0usize;
    let mut prev_tails: Vec<usize> = Vec::new();
    for _ in 0..j {
        let mut tails = Vec::new();
        for _ in 0..b {
            let ids: Vec<usize> = (next..next + n).collect();
            next += n;
            for w in ids.windows(2) {
                edges.push((w[0], w[1]));
            }
            for &t in &prev_tails {
                edges.push((t, ids[0]));
            }
            tails.push(*ids.last().unwrap());
        }
        prev_tails = tails;
    }
    (next, edges)
}

fn bench_chain_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_count");
    for (j, b, n) in [(2usize, 4usize, 4usize), (3, 8, 4), (4, 12, 5)] {
        let (nodes, edges) = symmetric_edges(j, b, n);
        let closure = closure_from_edges(nodes, &edges);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("J{j}B{b}n{n}_N{nodes}")),
            &closure,
            |bch, closure| {
                bch.iter(|| chain_count(closure));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_chain_count);
criterion_main!(benches);
