//! Criterion microbenchmarks for the trace store: streaming decode
//! throughput, end-to-end ingestion into the sharded columns, and the full
//! ingest-plus-analysis pipeline over a 100-run case-study corpus.

use aid_cases::npgsql;
use aid_sim::Simulator;
use aid_store::{StoreConfig, StreamDecoder, TraceStore};
use aid_trace::codec;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_store(c: &mut Criterion) {
    let case = npgsql::case();
    let sim = Simulator::new(case.program.clone());
    let logs = sim.collect_balanced(50, 50, 60_000);
    let encoded = codec::encode(&logs);

    c.bench_function("stream_decode_npgsql_100_runs", |b| {
        b.iter(|| {
            let mut dec = StreamDecoder::new();
            for chunk in encoded.as_bytes().chunks(8192) {
                dec.push_bytes(chunk);
            }
            dec.finish();
            black_box(dec.drain().len())
        });
    });

    c.bench_function("store_ingest_npgsql_100_runs", |b| {
        b.iter(|| {
            let mut store = TraceStore::new(StoreConfig::default());
            for chunk in encoded.as_bytes().chunks(8192) {
                store.ingest_bytes(chunk);
            }
            store.finish_ingest();
            black_box(store.len())
        });
    });

    c.bench_function("store_ingest_refresh_npgsql_100_runs", |b| {
        b.iter(|| {
            let mut store = TraceStore::new(StoreConfig {
                extraction: case.config.clone(),
                ..StoreConfig::default()
            });
            store.ingest_str(&encoded);
            store.finish_ingest();
            let analysis = store.refresh().expect("failures present");
            black_box(analysis.candidates.len())
        });
    });
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
