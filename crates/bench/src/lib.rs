//! Shared helpers for the benchmark binaries that regenerate the paper's
//! tables and figures (see `src/bin/` and EXPERIMENTS.md).

pub mod gate;
pub mod snapshot;

/// Renders an aligned plain-text table: `rows[0]` is the header.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            out.push_str(cell);
            out.push_str(&" ".repeat(pad + 2));
        }
        out.pop();
        out.pop();
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Parses a `--flag=value` style argument from `std::env::args`.
pub fn arg_value(name: &str) -> Option<String> {
    let prefix = format!("--{name}=");
    std::env::args().find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(&[
            vec!["a".into(), "long-header".into()],
            vec!["wide-cell".into(), "x".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
    }
}
