//! The benchdiff regression gate: pure key-classification and verdict
//! math, kept out of the binary so it is unit-testable.
//!
//! Direction is inferred from the key suffix:
//!
//! * `_per_s`, `_speedup`, `_hit_rate` — higher is better (relative gate).
//! * `_ms` — lower is better (relative gate).
//! * `_us` — lower is better, gated by an **absolute** microsecond
//!   tolerance. These are latency-histogram quantiles (`serve_p99_frame_us`
//!   and friends): near-zero baselines make relative deltas meaningless —
//!   3 µs → 7 µs is a +133% "regression" that is pure scheduler noise —
//!   while an absolute budget ("p99 may grow by at most N µs") is stable.
//! * anything else — informational.
//!
//! Gating: ratio keys (`_speedup`, `_hit_rate`) and `_us` keys gate the
//! exit code by default — both are stable across machines (ratios by
//! construction, `_us` keys by the absolute budget). Absolute rates gate
//! only under `--all`.

/// Which way a key is allowed to move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Bigger numbers are better; regression is a relative drop.
    HigherIsBetter,
    /// Smaller numbers are better; regression is a relative rise.
    LowerIsBetter,
    /// Smaller numbers are better; regression is an **absolute** rise
    /// beyond the microsecond budget (`_us` latency keys).
    LowerIsBetterAbs,
    /// Not gated in any mode.
    Info,
}

/// Tolerances and gating mode for one diff run.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// Relative tolerance for ratio-gated directions (0.30 = ±30%).
    pub relative_tolerance: f64,
    /// Absolute budget for `_us` keys: `current` may exceed `baseline`
    /// by at most this many microseconds.
    pub absolute_tolerance_us: f64,
    /// Gate every directional key, not just the stable ones.
    pub gate_all: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            relative_tolerance: 0.30,
            absolute_tolerance_us: 500.0,
            gate_all: false,
        }
    }
}

/// One key's verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or improved).
    Ok,
    /// Beyond tolerance on a key that gates the exit code.
    Regressed,
    /// Beyond tolerance, but the key doesn't gate in this mode.
    RegressedUngated,
    /// Direction-less key; never gates.
    Info,
}

impl Verdict {
    /// Whether this verdict fails the run.
    pub fn fails(self) -> bool {
        self == Verdict::Regressed
    }
}

/// Infers a key's direction from its suffix.
pub fn direction(key: &str) -> Direction {
    if key.ends_with("_per_s") || key.ends_with("_speedup") || key.ends_with("_hit_rate") {
        Direction::HigherIsBetter
    } else if key.ends_with("_ms") {
        Direction::LowerIsBetter
    } else if key.ends_with("_us") {
        Direction::LowerIsBetterAbs
    } else {
        Direction::Info
    }
}

/// Whether `key` gates the exit code under `config`. Ratio keys and
/// absolute-budget `_us` keys always gate; everything directional gates
/// under `gate_all`.
pub fn gates(key: &str, config: &GateConfig) -> bool {
    config.gate_all
        || key.ends_with("_speedup")
        || key.ends_with("_hit_rate")
        || key.ends_with("_us")
}

/// Judges one `(baseline, current)` pair. The returned `f64` is the
/// relative delta (`current / baseline - 1`), for display; the verdict is
/// computed in the key's own gate space (relative or absolute).
pub fn judge(key: &str, baseline: f64, current: f64, config: &GateConfig) -> (Verdict, f64) {
    let delta = if baseline != 0.0 {
        current / baseline - 1.0
    } else {
        0.0
    };
    let regressed = match direction(key) {
        Direction::HigherIsBetter => delta < -config.relative_tolerance,
        Direction::LowerIsBetter => delta > config.relative_tolerance,
        Direction::LowerIsBetterAbs => current - baseline > config.absolute_tolerance_us,
        Direction::Info => return (Verdict::Info, delta),
    };
    let verdict = match (regressed, gates(key, config)) {
        (true, true) => Verdict::Regressed,
        (true, false) => Verdict::RegressedUngated,
        (false, _) => Verdict::Ok,
    };
    (verdict, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GateConfig {
        GateConfig {
            relative_tolerance: 0.30,
            absolute_tolerance_us: 100.0,
            gate_all: false,
        }
    }

    #[test]
    fn suffixes_map_to_directions() {
        assert_eq!(direction("x_per_s"), Direction::HigherIsBetter);
        assert_eq!(direction("x_speedup"), Direction::HigherIsBetter);
        assert_eq!(direction("x_hit_rate"), Direction::HigherIsBetter);
        assert_eq!(direction("x_ms"), Direction::LowerIsBetter);
        assert_eq!(direction("serve_p99_frame_us"), Direction::LowerIsBetterAbs);
        assert_eq!(direction("x_bytes"), Direction::Info);
    }

    #[test]
    fn us_keys_use_the_absolute_budget_not_the_ratio() {
        // +133% relative but only +4 µs absolute: scheduler noise, ok.
        assert_eq!(judge("p99_us", 3.0, 7.0, &cfg()).0, Verdict::Ok);
        // +101 µs absolute blows the 100 µs budget even though the
        // relative delta (+10%) is well inside the ratio tolerance.
        assert_eq!(
            judge("p99_us", 1000.0, 1101.0, &cfg()).0,
            Verdict::Regressed
        );
        // Exactly at the budget is allowed; improvement always is.
        assert_eq!(judge("p99_us", 1000.0, 1100.0, &cfg()).0, Verdict::Ok);
        assert_eq!(judge("p99_us", 1000.0, 200.0, &cfg()).0, Verdict::Ok);
    }

    #[test]
    fn us_keys_gate_by_default_like_ratio_keys() {
        assert!(gates("serve_p99_frame_us", &cfg()));
        assert!(gates("x_hit_rate", &cfg()));
        assert!(gates("x_speedup", &cfg()));
        assert!(!gates("x_per_s", &cfg()));
        assert!(!gates("x_ms", &cfg()));
        let all = GateConfig {
            gate_all: true,
            ..cfg()
        };
        assert!(gates("x_ms", &all));
    }

    #[test]
    fn relative_directions_still_judge_relative() {
        assert_eq!(
            judge("x_hit_rate", 0.90, 0.50, &cfg()).0,
            Verdict::Regressed
        );
        assert_eq!(judge("x_hit_rate", 0.90, 0.80, &cfg()).0, Verdict::Ok);
        // Ungated in default mode, gated under --all.
        assert_eq!(
            judge("x_ms", 100.0, 200.0, &cfg()).0,
            Verdict::RegressedUngated
        );
        let all = GateConfig {
            gate_all: true,
            ..cfg()
        };
        assert_eq!(judge("x_ms", 100.0, 200.0, &all).0, Verdict::Regressed);
        assert_eq!(
            judge("x_per_s", 100.0, 60.0, &cfg()).0,
            Verdict::RegressedUngated
        );
    }

    #[test]
    fn info_keys_never_fail_and_zero_baselines_dont_divide() {
        let (v, d) = judge("x_bytes", 10.0, 99.0, &cfg());
        assert_eq!(v, Verdict::Info);
        assert!(!v.fails());
        let (_, d0) = judge("x_per_s", 0.0, 50.0, &cfg());
        assert_eq!(d0, 0.0);
        assert!((d - 8.9).abs() < 1e-9);
    }
}
