//! loadgen — drive a live `aid_serve` server with N concurrent clients
//! replaying lab-generated debugging sessions over loopback TCP.
//!
//! ```sh
//! cargo run -p aid_bench --bin loadgen --release -- \
//!     [--clients=4] [--scenarios=12] [--workers=4] [--seed=1] \
//!     [--chunk=4096] [--allow-rejections=0]
//! ```
//!
//! Every client replays the *same* scenario list (upload corpus → submit
//! discovery → stream to completion), so the run measures the service's
//! cross-client economics: the first client to reach a scenario executes
//! its interventions, the rest are answered from the shared intervention
//! cache. The run fails (nonzero exit) on any client/protocol error, any
//! cross-client result mismatch, any server-side protocol error, or — by
//! default — any admission rejection: a correctly provisioned run sheds
//! nothing, so a rejection in CI means the sizing contract broke. Pass
//! `--allow-rejections=1` when deliberately overloading.
//!
//! Emits a machine-readable `AID-SERVE {json}` summary line (throughput,
//! p50/p99 session latency, rejection rate, cache hit-rate).

use aid_bench::{arg_value, render_table};
use aid_engine::EngineConfig;
use aid_lab::{prepare_replay, LabParams, ReplayItem};
use aid_serve::{
    Admission, AidClient, AnalysisSpec, OverloadScope, ProgramSpec, ServeConfig, Server, SubmitSpec,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DISCOVERY_SEED: u64 = 11;
const FIRST_SEED: u64 = 1_000_000;

/// One completed session, as observed by a client.
struct Sample {
    scenario: usize,
    latency: Duration,
    causal: Vec<u32>,
    rounds: usize,
}

fn arg_or(name: &str, default: usize) -> usize {
    arg_value(name)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn run_client(
    addr: std::net::SocketAddr,
    id: usize,
    items: &[ReplayItem],
    chunk: usize,
) -> Result<(Vec<Sample>, u64), String> {
    let fail = |stage: &str, e: &dyn std::fmt::Display| format!("client {id} {stage}: {e}");
    let mut client = AidClient::connect_tcp(addr).map_err(|e| fail("connect", &e))?;
    client
        .hello(&format!("loadgen-{id}"))
        .map_err(|e| fail("hello", &e))?;
    let mut samples = Vec::with_capacity(items.len());
    let mut rejections = 0u64;
    for (index, item) in items.iter().enumerate() {
        let started = Instant::now();
        let report = client
            .upload(
                item.encoded.as_bytes(),
                chunk,
                AnalysisSpec::Lab(item.scenario.spec),
            )
            .map_err(|e| fail("upload", &e))?;
        if !report.analyzed || report.quarantined != 0 {
            return Err(format!(
                "client {id} upload of {}: quarantined={} analyzed={}",
                item.scenario.name, report.quarantined, report.analyzed
            ));
        }
        let spec = SubmitSpec {
            name: format!("{}/c{id}", item.scenario.name),
            program: ProgramSpec::Lab(item.scenario.spec),
            strategy: aid_core::Strategy::Aid,
            discovery_seed: DISCOVERY_SEED,
            runs_per_round: item.scenario.runs_per_round as u32,
            first_seed: FIRST_SEED,
            prune_quorum: 1,
        };
        // Back off briefly on a rejection; a drain rejection is final.
        let session = loop {
            match client.submit(&spec).map_err(|e| fail("submit", &e))? {
                Admission::Accepted(session) => break session,
                Admission::Rejected(overload) => {
                    rejections += 1;
                    if overload.scope == OverloadScope::Draining {
                        return Err(format!("client {id}: server draining mid-run"));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        };
        let (result, _progress) = client.wait(session).map_err(|e| fail("wait", &e))?;
        samples.push(Sample {
            scenario: index,
            latency: started.elapsed(),
            causal: result.causal.iter().map(|p| p.raw()).collect(),
            rounds: result.rounds,
        });
    }
    client.goodbye().map_err(|e| fail("goodbye", &e))?;
    Ok((samples, rejections))
}

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

fn main() {
    let clients = arg_or("clients", 4);
    let scenarios = arg_or("scenarios", 12);
    let workers = arg_or("workers", 4);
    let seed = arg_or("seed", 1) as u64;
    let chunk = arg_or("chunk", 4096);
    let allow_rejections = arg_or("allow-rejections", 0) != 0;

    println!("Preparing {scenarios} lab scenarios (seed {seed})…");
    let params = LabParams::default();
    let items = Arc::new(prepare_replay(&params, seed..seed + scenarios as u64));
    let upload_bytes: usize = items.iter().map(|i| i.encoded.len()).sum();

    let config = ServeConfig {
        engine: EngineConfig {
            workers,
            max_pending: (2 * clients).max(8),
            ..EngineConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, addr) = Server::start_tcp("127.0.0.1:0", config).expect("bind loopback");
    println!(
        "Server on {addr} ({workers} workers); {clients} clients × {scenarios} sessions \
         ({:.1} KiB of uploads per client)…\n",
        upload_bytes as f64 / 1024.0
    );

    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|id| {
            let items = Arc::clone(&items);
            std::thread::spawn(move || run_client(addr, id, &items, chunk))
        })
        .collect();

    let mut samples: Vec<Sample> = Vec::new();
    let mut rejections = 0u64;
    let mut client_errors: Vec<String> = Vec::new();
    for thread in threads {
        match thread.join().expect("client thread panicked") {
            Ok((s, r)) => {
                samples.extend(s);
                rejections += r;
            }
            Err(e) => client_errors.push(e),
        }
    }
    let elapsed = started.elapsed();
    let stats = server.shutdown();

    // Cross-client determinism: every replica of a scenario must report
    // the identical causal path and round count.
    let mut mismatches = 0usize;
    let mut rows = vec![vec![
        "scenario".to_string(),
        "replicas".to_string(),
        "rounds".to_string(),
        "causal path".to_string(),
        "p50 ms".to_string(),
    ]];
    for (index, item) in items.iter().enumerate() {
        let replicas: Vec<&Sample> = samples.iter().filter(|s| s.scenario == index).collect();
        let Some(first) = replicas.first() else {
            continue;
        };
        mismatches += replicas
            .iter()
            .filter(|s| s.causal != first.causal || s.rounds != first.rounds)
            .count();
        let mut lat: Vec<f64> = replicas
            .iter()
            .map(|s| s.latency.as_secs_f64() * 1e3)
            .collect();
        lat.sort_by(f64::total_cmp);
        rows.push(vec![
            item.scenario.name.clone(),
            replicas.len().to_string(),
            first.rounds.to_string(),
            first
                .causal
                .iter()
                .map(|p| format!("P{p}"))
                .collect::<Vec<_>>()
                .join("→"),
            format!("{:.1}", percentile_ms(&lat, 0.5)),
        ]);
    }
    print!("{}", render_table(&rows));

    let mut latencies: Vec<f64> = samples
        .iter()
        .map(|s| s.latency.as_secs_f64() * 1e3)
        .collect();
    latencies.sort_by(f64::total_cmp);
    let sessions = samples.len();
    let submissions = sessions as u64 + rejections;
    let p50 = percentile_ms(&latencies, 0.5);
    let p99 = percentile_ms(&latencies, 0.99);

    println!(
        "\n{sessions} sessions in {elapsed:?} ({:.1} sessions/s) | \
         latency p50 {p50:.1} ms, p99 {p99:.1} ms",
        sessions as f64 / elapsed.as_secs_f64()
    );
    println!(
        "server: {} executions | cache {} hits / {} misses ({:.0}% hit rate) | \
         {} rejections | {} protocol errors",
        stats.executions,
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.cache_hit_rate(),
        stats.rejections(),
        stats.protocol_errors
    );
    for e in &client_errors {
        eprintln!("CLIENT ERROR: {e}");
    }

    println!(
        "AID-SERVE {{\"clients\":{clients},\"scenarios\":{scenarios},\"workers\":{workers},\
         \"seed\":{seed},\"sessions\":{sessions},\"elapsed_s\":{:.6},\"sessions_per_s\":{:.3},\
         \"p50_ms\":{p50:.3},\"p99_ms\":{p99:.3},\"rejections\":{},\"rejection_rate\":{:.4},\
         \"result_mismatches\":{mismatches},\"client_errors\":{},\"protocol_errors\":{},\
         \"executions\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4},\
         \"traces_ingested\":{},\"records_quarantined\":{},\"upload_chunks\":{},\
         \"bytes_in\":{},\"bytes_out\":{},\"sessions_completed\":{},\"peak_pending\":{}}}",
        elapsed.as_secs_f64(),
        sessions as f64 / elapsed.as_secs_f64(),
        stats.rejections(),
        if submissions == 0 {
            0.0
        } else {
            stats.rejections() as f64 / submissions as f64
        },
        client_errors.len(),
        stats.protocol_errors,
        stats.executions,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate(),
        stats.traces_ingested,
        stats.records_quarantined,
        stats.upload_chunks,
        stats.bytes_in,
        stats.bytes_out,
        stats.sessions_completed,
        stats.peak_pending,
    );

    // Record the serving-path metrics in their own snapshot so the serve
    // numbers diff independently of the simulator/engine keys.
    aid_bench::snapshot::merge_write(
        "BENCH_serve.json",
        &[
            (
                "serve_sessions_per_s".to_string(),
                sessions as f64 / elapsed.as_secs_f64(),
            ),
            ("serve_p50_ms".to_string(), p50),
            ("serve_p99_ms".to_string(), p99),
            ("serve_cache_hit_rate".to_string(), stats.cache_hit_rate()),
        ],
    );

    let expected = clients * scenarios;
    let mut failed = false;
    if !client_errors.is_empty() || sessions != expected {
        eprintln!("FAIL: {}/{expected} sessions completed", sessions);
        failed = true;
    }
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} cross-client result mismatches");
        failed = true;
    }
    if stats.protocol_errors > 0 {
        eprintln!(
            "FAIL: {} server-side protocol errors",
            stats.protocol_errors
        );
        failed = true;
    }
    if stats.rejections() > 0 && !allow_rejections {
        eprintln!(
            "FAIL: {} rejections in a run sized to shed nothing",
            stats.rejections()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
