//! loadgen — drive a live `aid_serve` server with N concurrent clients
//! replaying lab-generated debugging sessions over loopback TCP.
//!
//! ```sh
//! cargo run -p aid_bench --bin loadgen --release -- \
//!     [--clients=4] [--scenarios=12] [--workers=4] [--seed=1] \
//!     [--chunk=4096] [--allow-rejections=0] [--stream=0] [--tails=3] \
//!     [--tier=<name>] [--metrics-dump=0] [--assert-metrics=0]
//! ```
//!
//! Every client replays the *same* scenario list (upload corpus → submit
//! discovery → stream to completion), so the run measures the service's
//! cross-client economics: the first client to reach a scenario executes
//! its interventions, the rest are answered from the shared intervention
//! cache. The run fails (nonzero exit) on any client/protocol error, any
//! cross-client result mismatch, any server-side protocol error, or — by
//! default — any admission rejection: a correctly provisioned run sheds
//! nothing, so a rejection in CI means the sizing contract broke. Pass
//! `--allow-rejections=1` when deliberately overloading.
//!
//! With `--stream=1`, a second phase replays every scenario as a *standing
//! query*: each client subscribes a watch, streams the corpus as `--tails`
//! byte tails, and must converge to the identical `DiscoveryResult` the
//! one-shot phase produced; it then streams a stat-neutral tail (a replay
//! of a successful run) that must be answered from the watcher's cache
//! with no re-discovery. The phase's engine traffic is reported separately
//! (`AID-SERVE-STREAM {json}`) so the standing-query economics — near-total
//! cache service — are pinned by the benchmark snapshot.
//!
//! Emits a machine-readable `AID-SERVE {json}` summary line (throughput,
//! p50/p99 session latency, rejection rate, cache hit-rate).
//!
//! Every run also pulls one `Metrics` wire frame at the end — the server's
//! whole `aid_obs` registry in a single consistent snapshot — and records
//! the service-side frame latency distribution (`serve_p50_frame_us`,
//! `serve_p99_frame_us`, from the `serve.frame_us` histogram) in the
//! snapshot. `--metrics-dump=1` prints the snapshot in Prometheus text
//! exposition format; `--assert-metrics=1` fails the run unless the
//! snapshot carries per-shard engine cache histograms and a nonzero
//! reactor dwell-time distribution (the CI `obs` job's contract).
//!
//! `--tier=<name>` records the reactor-scale metrics of the run under
//! `serve_<name>_*` snapshot keys — connections held at peak, total
//! frames/s through the reactor, and the cross-client cache hit rate
//! (a `*_hit_rate` key, so it sits under the benchdiff ratio gate). Use
//! it for the high-client tiers (`--clients=512 --tier=reactor_512`,
//! `--clients=2048 --tier=reactor_2048`) whose point is that thousands
//! of mostly-idle connections are cheap for the event-driven core.

use aid_bench::{arg_value, render_table};
use aid_engine::EngineConfig;
use aid_lab::{prepare_replay, LabParams, ReplayItem};
use aid_serve::{
    Admission, AidClient, AnalysisSpec, OverloadScope, ProgramSpec, ServeConfig, Server,
    SubmitSpec, WatchSpec,
};
use aid_trace::{codec, Outcome, TraceSet};
use aid_watch::WatchEvent;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DISCOVERY_SEED: u64 = 11;
const FIRST_SEED: u64 = 1_000_000;

/// One completed session, as observed by a client.
struct Sample {
    scenario: usize,
    latency: Duration,
    causal: Vec<u32>,
    rounds: usize,
}

fn arg_or(name: &str, default: usize) -> usize {
    arg_value(name)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn run_client(
    addr: std::net::SocketAddr,
    id: usize,
    items: &[ReplayItem],
    chunk: usize,
) -> Result<(Vec<Sample>, u64), String> {
    let fail = |stage: &str, e: &dyn std::fmt::Display| format!("client {id} {stage}: {e}");
    let mut client = AidClient::connect_tcp(addr).map_err(|e| fail("connect", &e))?;
    client
        .hello(&format!("loadgen-{id}"))
        .map_err(|e| fail("hello", &e))?;
    let mut samples = Vec::with_capacity(items.len());
    let mut rejections = 0u64;
    for (index, item) in items.iter().enumerate() {
        let started = Instant::now();
        let report = client
            .upload(
                item.encoded.as_bytes(),
                chunk,
                AnalysisSpec::Lab(item.scenario.spec),
            )
            .map_err(|e| fail("upload", &e))?;
        if !report.analyzed || report.quarantined != 0 {
            return Err(format!(
                "client {id} upload of {}: quarantined={} analyzed={}",
                item.scenario.name, report.quarantined, report.analyzed
            ));
        }
        let spec = SubmitSpec {
            name: format!("{}/c{id}", item.scenario.name),
            program: ProgramSpec::Lab(item.scenario.spec),
            strategy: aid_core::Strategy::Aid,
            discovery_seed: DISCOVERY_SEED,
            runs_per_round: item.scenario.runs_per_round as u32,
            first_seed: FIRST_SEED,
            prune_quorum: 1,
        };
        // Back off briefly on a rejection; a drain rejection is final.
        let session = loop {
            match client.submit(&spec).map_err(|e| fail("submit", &e))? {
                Admission::Accepted(session) => break session,
                Admission::Rejected(overload) => {
                    rejections += 1;
                    if overload.scope == OverloadScope::Draining {
                        return Err(format!("client {id}: server draining mid-run"));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        };
        let (result, _progress) = client.wait(session).map_err(|e| fail("wait", &e))?;
        samples.push(Sample {
            scenario: index,
            latency: started.elapsed(),
            causal: result.causal.iter().map(|p| p.raw()).collect(),
            rounds: result.rounds,
        });
    }
    client.goodbye().map_err(|e| fail("goodbye", &e))?;
    Ok((samples, rejections))
}

/// A tail that moves no predicate statistic: a replay of a successful run
/// already in the corpus (site stability, duration envelopes, unique
/// returns, and every candidate's counts are preserved).
fn neutral_tail(corpus: &TraceSet) -> String {
    let replay = corpus
        .traces
        .iter()
        .find(|t| matches!(t.outcome, Outcome::Success))
        .cloned()
        .expect("validated corpora contain successful runs");
    codec::encode(&TraceSet {
        methods: corpus.methods.clone(),
        objects: corpus.objects.clone(),
        channels: corpus.channels.clone(),
        traces: vec![replay],
    })
}

/// The convergence a tick reported, whatever event carried it.
fn converged_of(events: &[WatchEvent]) -> Option<&aid_core::DiscoveryResult> {
    events.iter().rev().find_map(|e| match e {
        WatchEvent::Converged { result, .. } => Some(result),
        WatchEvent::RootChanged { result, .. } => Some(result),
        _ => None,
    })
}

/// Phase-2 client: replay every scenario as a standing query. Returns the
/// converged samples and the number of stat-neutral tails answered from
/// the watcher's cache (must end up `items.len()`).
fn run_stream_client(
    addr: std::net::SocketAddr,
    id: usize,
    items: &[ReplayItem],
    tails: usize,
) -> Result<(Vec<Sample>, u64), String> {
    let fail = |stage: &str, e: &dyn std::fmt::Display| format!("stream client {id} {stage}: {e}");
    let mut client = AidClient::connect_tcp(addr).map_err(|e| fail("connect", &e))?;
    client
        .hello(&format!("loadgen-stream-{id}"))
        .map_err(|e| fail("hello", &e))?;
    let mut samples = Vec::with_capacity(items.len());
    let mut cached = 0u64;
    for (index, item) in items.iter().enumerate() {
        let started = Instant::now();
        let mut spec = WatchSpec::new(
            format!("{}/w{id}", item.scenario.name),
            AnalysisSpec::Lab(item.scenario.spec),
            ProgramSpec::Lab(item.scenario.spec),
        );
        spec.discovery_seed = DISCOVERY_SEED;
        spec.first_seed = FIRST_SEED;
        spec.runs_per_round = item.scenario.runs_per_round as u32;
        let watch = loop {
            match client.subscribe(&spec).map_err(|e| fail("subscribe", &e))? {
                Admission::Accepted(watch) => break watch,
                Admission::Rejected(overload) => {
                    if overload.scope == OverloadScope::Draining {
                        return Err(format!("stream client {id}: server draining mid-run"));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        };
        // The corpus as `tails` byte tails; cuts land anywhere in a line
        // and the chunking is identical across clients, so every client's
        // mid-stream re-probes hit the same intervention-cache keys.
        let bytes = item.encoded.as_bytes();
        let step = bytes.len().div_ceil(tails.max(1));
        let mut report = None;
        for (i, piece) in bytes.chunks(step).enumerate() {
            let fin = (i + 1) * step >= bytes.len();
            report = Some(
                client
                    .stream_tail(watch, piece, fin)
                    .map_err(|e| fail("stream_tail", &e))?,
            );
        }
        let report = report.expect("corpora are non-empty");
        let Some(result) = converged_of(&report.events) else {
            return Err(format!(
                "stream client {id}: {} never converged over the full corpus",
                item.scenario.name
            ));
        };
        samples.push(Sample {
            scenario: index,
            latency: started.elapsed(),
            causal: result.causal.iter().map(|p| p.raw()).collect(),
            rounds: result.rounds,
        });

        // Post-convergence economy: the stat-neutral tail must republish
        // the cached convergence without re-discovery.
        let neutral = neutral_tail(&item.corpus);
        let report = client
            .stream_tail(watch, neutral.as_bytes(), true)
            .map_err(|e| fail("neutral tail", &e))?;
        match report.events.as_slice() {
            [WatchEvent::Converged {
                resubmitted: false, ..
            }] => cached += 1,
            other => {
                return Err(format!(
                    "stream client {id}: stat-neutral tail on {} was not cache-served: {other:?}",
                    item.scenario.name
                ))
            }
        }
        if !client
            .unsubscribe(watch)
            .map_err(|e| fail("unsubscribe", &e))?
        {
            return Err(format!("stream client {id}: watch {watch} vanished"));
        }
    }
    client.goodbye().map_err(|e| fail("goodbye", &e))?;
    Ok((samples, cached))
}

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

fn main() {
    let clients = arg_or("clients", 4);
    let scenarios = arg_or("scenarios", 12);
    let workers = arg_or("workers", 4);
    let seed = arg_or("seed", 1) as u64;
    let chunk = arg_or("chunk", 4096);
    let allow_rejections = arg_or("allow-rejections", 0) != 0;
    let stream = arg_or("stream", 0) != 0;
    let tails = arg_or("tails", 3);
    let tier = arg_value("tier");
    let metrics_dump = arg_or("metrics-dump", 0) != 0;
    let assert_metrics = arg_or("assert-metrics", 0) != 0;

    println!("Preparing {scenarios} lab scenarios (seed {seed})…");
    let params = LabParams::default();
    let items = Arc::new(prepare_replay(&params, seed..seed + scenarios as u64));
    let upload_bytes: usize = items.iter().map(|i| i.encoded.len()).sum();

    let config = ServeConfig {
        engine: EngineConfig {
            workers,
            max_pending: (2 * clients).max(8),
            ..EngineConfig::default()
        },
        // High-client tiers hold every connection open at once; the cap
        // scales with the fleet so the run sheds nothing by design.
        max_connections: (2 * clients).max(256),
        ..ServeConfig::default()
    };
    let (server, addr) = Server::start_tcp("127.0.0.1:0", config).expect("bind loopback");
    println!(
        "Server on {addr} ({workers} workers); {clients} clients × {scenarios} sessions \
         ({:.1} KiB of uploads per client)…\n",
        upload_bytes as f64 / 1024.0
    );

    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|id| {
            // Stagger large fleets a little so thousands of simultaneous
            // SYNs don't overflow the listen backlog before the reactor
            // gets a chance to drain it.
            if clients > 64 {
                std::thread::sleep(Duration::from_micros(200));
            }
            let items = Arc::clone(&items);
            std::thread::spawn(move || run_client(addr, id, &items, chunk))
        })
        .collect();

    let mut samples: Vec<Sample> = Vec::new();
    let mut rejections = 0u64;
    let mut client_errors: Vec<String> = Vec::new();
    for thread in threads {
        match thread.join().expect("client thread panicked") {
            Ok((s, r)) => {
                samples.extend(s);
                rejections += r;
            }
            Err(e) => client_errors.push(e),
        }
    }
    let elapsed = started.elapsed();

    // Phase 2 (--stream=1): the same fleet replays every scenario as a
    // standing query against the cache the one-shot phase just filled.
    let one_shot_stats = server.stats();
    let mut stream_samples: Vec<Sample> = Vec::new();
    let mut stream_cached = 0u64;
    let mut stream_errors: Vec<String> = Vec::new();
    let mut stream_elapsed = Duration::ZERO;
    if stream {
        println!("\nStreaming phase: {clients} clients × {scenarios} standing queries…");
        let stream_started = Instant::now();
        let threads: Vec<_> = (0..clients)
            .map(|id| {
                let items = Arc::clone(&items);
                std::thread::spawn(move || run_stream_client(addr, id, &items, tails))
            })
            .collect();
        for thread in threads {
            match thread.join().expect("stream client thread panicked") {
                Ok((s, c)) => {
                    stream_samples.extend(s);
                    stream_cached += c;
                }
                Err(e) => stream_errors.push(e),
            }
        }
        stream_elapsed = stream_started.elapsed();
    }

    // One Metrics frame over the live wire: the registry's consistent
    // snapshot, carrying every tier's counters and latency histograms.
    let obs = {
        let mut mc = AidClient::connect_tcp(addr).expect("metrics connect");
        mc.hello("loadgen-metrics").expect("metrics hello");
        let snap = mc.metrics().expect("metrics frame");
        let _ = mc.goodbye();
        snap
    };

    let stats = server.shutdown();

    // Cross-client determinism: every replica of a scenario must report
    // the identical causal path and round count.
    let mut mismatches = 0usize;
    let mut rows = vec![vec![
        "scenario".to_string(),
        "replicas".to_string(),
        "rounds".to_string(),
        "causal path".to_string(),
        "p50 ms".to_string(),
    ]];
    for (index, item) in items.iter().enumerate() {
        let replicas: Vec<&Sample> = samples.iter().filter(|s| s.scenario == index).collect();
        let Some(first) = replicas.first() else {
            continue;
        };
        mismatches += replicas
            .iter()
            .filter(|s| s.causal != first.causal || s.rounds != first.rounds)
            .count();
        let mut lat: Vec<f64> = replicas
            .iter()
            .map(|s| s.latency.as_secs_f64() * 1e3)
            .collect();
        lat.sort_by(f64::total_cmp);
        rows.push(vec![
            item.scenario.name.clone(),
            replicas.len().to_string(),
            first.rounds.to_string(),
            first
                .causal
                .iter()
                .map(|p| format!("P{p}"))
                .collect::<Vec<_>>()
                .join("→"),
            format!("{:.1}", percentile_ms(&lat, 0.5)),
        ]);
    }
    print!("{}", render_table(&rows));

    let mut latencies: Vec<f64> = samples
        .iter()
        .map(|s| s.latency.as_secs_f64() * 1e3)
        .collect();
    latencies.sort_by(f64::total_cmp);
    let sessions = samples.len();
    let submissions = sessions as u64 + rejections;
    let p50 = percentile_ms(&latencies, 0.5);
    let p99 = percentile_ms(&latencies, 0.99);

    println!(
        "\n{sessions} sessions in {elapsed:?} ({:.1} sessions/s) | \
         latency p50 {p50:.1} ms, p99 {p99:.1} ms",
        sessions as f64 / elapsed.as_secs_f64()
    );
    println!(
        "server: {} executions | cache {} hits / {} misses ({:.0}% hit rate) | \
         {} rejections | {} protocol errors",
        stats.executions,
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.cache_hit_rate(),
        stats.rejections(),
        stats.protocol_errors
    );
    for e in &client_errors {
        eprintln!("CLIENT ERROR: {e}");
    }

    println!(
        "AID-SERVE {{\"clients\":{clients},\"scenarios\":{scenarios},\"workers\":{workers},\
         \"seed\":{seed},\"sessions\":{sessions},\"elapsed_s\":{:.6},\"sessions_per_s\":{:.3},\
         \"p50_ms\":{p50:.3},\"p99_ms\":{p99:.3},\"rejections\":{},\"rejection_rate\":{:.4},\
         \"result_mismatches\":{mismatches},\"client_errors\":{},\"protocol_errors\":{},\
         \"executions\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4},\
         \"traces_ingested\":{},\"records_quarantined\":{},\"upload_chunks\":{},\
         \"bytes_in\":{},\"bytes_out\":{},\"sessions_completed\":{},\"peak_pending\":{}}}",
        elapsed.as_secs_f64(),
        sessions as f64 / elapsed.as_secs_f64(),
        stats.rejections(),
        if submissions == 0 {
            0.0
        } else {
            stats.rejections() as f64 / submissions as f64
        },
        client_errors.len(),
        stats.protocol_errors,
        stats.executions,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate(),
        stats.traces_ingested,
        stats.records_quarantined,
        stats.upload_chunks,
        stats.bytes_in,
        stats.bytes_out,
        stats.sessions_completed,
        stats.peak_pending,
    );

    // Service-side frame latency, from the telemetry plane rather than
    // client-observed wall clock: dispatch-to-responses-queued per frame.
    let frame_hist = obs.histogram("serve.frame_us");
    let (frame_p50_us, frame_p99_us) = frame_hist
        .map(|h| (h.quantile(0.50) as f64, h.quantile(0.99) as f64))
        .unwrap_or((0.0, 0.0));
    println!(
        "telemetry: {} metrics | frame handling p50 {frame_p50_us} µs, p99 {frame_p99_us} µs \
         (server-side, {} frames)",
        obs.entries.len(),
        frame_hist.map_or(0, |h| h.count),
    );

    // Record the serving-path metrics in their own snapshot so the serve
    // numbers diff independently of the simulator/engine keys.
    aid_bench::snapshot::merge_write(
        "BENCH_serve.json",
        &[
            (
                "serve_sessions_per_s".to_string(),
                sessions as f64 / elapsed.as_secs_f64(),
            ),
            ("serve_p50_ms".to_string(), p50),
            ("serve_p99_ms".to_string(), p99),
            ("serve_p50_frame_us".to_string(), frame_p50_us),
            ("serve_p99_frame_us".to_string(), frame_p99_us),
            ("serve_cache_hit_rate".to_string(), stats.cache_hit_rate()),
        ],
    );

    if metrics_dump {
        println!("\n--- metrics ({} entries) ---", obs.entries.len());
        print!("{}", obs.render_prometheus());
    }

    // Reactor-scale tier: how many connections the event core held at
    // once, the frame throughput it multiplexed, and the cross-client
    // hit rate at that scale (ratio key — benchdiff gates it).
    if let Some(tier) = &tier {
        let frames_per_s =
            (stats.frames_in + stats.frames_out) as f64 / elapsed.as_secs_f64().max(1e-9);
        println!(
            "AID-SERVE-REACTOR {{\"tier\":\"{tier}\",\"connections_held\":{},\
             \"handler_dispatches\":{},\"frames_per_s\":{frames_per_s:.1},\
             \"engine_shards\":{},\"cache_hit_rate\":{:.4}}}",
            stats.peak_connections,
            stats.handler_dispatches,
            stats.engine_shards,
            stats.cache_hit_rate(),
        );
        aid_bench::snapshot::merge_write(
            "BENCH_serve.json",
            &[
                (
                    format!("serve_{tier}_connections_held"),
                    stats.peak_connections as f64,
                ),
                (format!("serve_{tier}_frames_per_s"), frames_per_s),
                (format!("serve_{tier}_hit_rate"), stats.cache_hit_rate()),
            ],
        );
    }

    let expected = clients * scenarios;
    let mut failed = false;
    if assert_metrics {
        // The telemetry contract the CI `obs` job pins: the wire snapshot
        // must carry per-shard engine cache counters + lease-wait
        // histograms and a live reactor dwell-time distribution.
        let shards = stats.engine_shards.max(1);
        for shard in 0..shards {
            for key in [
                format!("engine.shard{shard}.cache.hits"),
                format!("engine.shard{shard}.cache.misses"),
            ] {
                if obs.counter(&key).is_none() {
                    eprintln!("FAIL: metrics snapshot is missing counter {key}");
                    failed = true;
                }
            }
            let key = format!("engine.shard{shard}.cache.lease_wait_us");
            if obs.histogram(&key).is_none() {
                eprintln!("FAIL: metrics snapshot is missing histogram {key}");
                failed = true;
            }
        }
        match obs.histogram("serve.reactor.dwell_us") {
            Some(h) if h.count > 0 => {}
            Some(_) => {
                eprintln!("FAIL: serve.reactor.dwell_us recorded nothing");
                failed = true;
            }
            None => {
                eprintln!("FAIL: metrics snapshot is missing serve.reactor.dwell_us");
                failed = true;
            }
        }
        match frame_hist {
            Some(h) if h.count > 0 => {}
            _ => {
                eprintln!("FAIL: serve.frame_us is missing or empty");
                failed = true;
            }
        }
        if obs.counter("serve.frames_in").unwrap_or(0) == 0 {
            eprintln!("FAIL: serve.frames_in is missing or zero");
            failed = true;
        }
    }
    if stream {
        // Streamed convergences must match the one-shot results exactly.
        let mut stream_mismatches = 0usize;
        for index in 0..items.len() {
            let Some(reference) = samples.iter().find(|s| s.scenario == index) else {
                continue;
            };
            stream_mismatches += stream_samples
                .iter()
                .filter(|s| s.scenario == index)
                .filter(|s| s.causal != reference.causal || s.rounds != reference.rounds)
                .count();
        }
        let d_hits = stats.cache_hits - one_shot_stats.cache_hits;
        let d_misses = stats.cache_misses - one_shot_stats.cache_misses;
        let stream_hit_rate = if d_hits + d_misses == 0 {
            1.0
        } else {
            d_hits as f64 / (d_hits + d_misses) as f64
        };
        let watches = stream_samples.len();
        println!(
            "\nstreaming: {watches} watches in {stream_elapsed:?} ({:.1} watches/s) | \
             {} executions, cache hit rate {:.0}% | {stream_cached} stat-neutral tails \
             cache-served | reprobed {} / skipped {} candidates",
            watches as f64 / stream_elapsed.as_secs_f64().max(1e-9),
            stats.executions - one_shot_stats.executions,
            100.0 * stream_hit_rate,
            stats.view_reprobed,
            stats.view_skipped,
        );
        for e in &stream_errors {
            eprintln!("STREAM CLIENT ERROR: {e}");
        }
        println!(
            "AID-SERVE-STREAM {{\"clients\":{clients},\"scenarios\":{scenarios},\
             \"watches\":{watches},\"elapsed_s\":{:.6},\"watches_per_s\":{:.3},\
             \"executions\":{},\"cache_hits\":{d_hits},\"cache_misses\":{d_misses},\
             \"cache_hit_rate\":{stream_hit_rate:.4},\"neutral_cached\":{stream_cached},\
             \"result_mismatches\":{stream_mismatches},\"client_errors\":{},\
             \"watch_events\":{},\"view_reprobed\":{},\"view_skipped\":{}}}",
            stream_elapsed.as_secs_f64(),
            watches as f64 / stream_elapsed.as_secs_f64().max(1e-9),
            stats.executions - one_shot_stats.executions,
            stream_errors.len(),
            stats.watch_events,
            stats.view_reprobed,
            stats.view_skipped,
        );
        aid_bench::snapshot::merge_write(
            "BENCH_serve.json",
            &[
                (
                    "serve_stream_watches_per_s".to_string(),
                    watches as f64 / stream_elapsed.as_secs_f64().max(1e-9),
                ),
                ("serve_stream_cache_hit_rate".to_string(), stream_hit_rate),
            ],
        );
        if !stream_errors.is_empty() || watches != expected {
            eprintln!("FAIL: {watches}/{expected} standing queries converged");
            failed = true;
        }
        if stream_mismatches > 0 {
            eprintln!("FAIL: {stream_mismatches} streamed-vs-one-shot result mismatches");
            failed = true;
        }
        if stream_cached != expected as u64 {
            eprintln!("FAIL: {stream_cached}/{expected} stat-neutral tails were cache-served");
            failed = true;
        }
    }
    if !client_errors.is_empty() || sessions != expected {
        eprintln!("FAIL: {}/{expected} sessions completed", sessions);
        failed = true;
    }
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} cross-client result mismatches");
        failed = true;
    }
    if stats.protocol_errors > 0 {
        eprintln!(
            "FAIL: {} server-side protocol errors",
            stats.protocol_errors
        );
        failed = true;
    }
    if stats.rejections() > 0 && !allow_rejections {
        eprintln!(
            "FAIL: {} rejections in a run sized to shed nothing",
            stats.rejections()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
