//! Snapshot regression diff: compares two flat benchmark snapshots
//! (`BENCH_sim.json` / `BENCH_serve.json`) and fails on regressions beyond
//! a tolerance.
//!
//! ```sh
//! cargo run -p aid_bench --bin benchdiff -- BASELINE CURRENT \
//!     [--tolerance=0.30] [--tolerance-us=500] [--all]
//! ```
//!
//! Direction, tolerances, and gating live in [`aid_bench::gate`] (unit
//! tested there): `_per_s`, `_speedup`, `_hit_rate` are higher-is-better
//! and `_ms` lower-is-better under the relative `--tolerance`; `_us`
//! latency-quantile keys are lower-is-better under the **absolute**
//! `--tolerance-us` microsecond budget (relative deltas on near-zero
//! latencies are pure noise); anything else is informational. By default
//! the stable keys gate the exit code — ratios (`_speedup`, `_hit_rate`)
//! and the absolute-budget `_us` keys — whereas absolute rates on a
//! shared runner can legitimately swing by the full tolerance. `--all`
//! gates every directional key, for diffing two runs taken on the same
//! quiet machine.

use aid_bench::gate::{judge, GateConfig, Verdict};
use aid_bench::{arg_value, render_table, snapshot};

fn main() {
    let positional: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let [baseline_path, current_path] = positional.as_slice() else {
        eprintln!(
            "usage: benchdiff BASELINE CURRENT [--tolerance=0.30] [--tolerance-us=500] [--all]"
        );
        std::process::exit(2);
    };
    let defaults = GateConfig::default();
    let config = GateConfig {
        relative_tolerance: arg_value("tolerance")
            .and_then(|s| s.parse().ok())
            .unwrap_or(defaults.relative_tolerance),
        absolute_tolerance_us: arg_value("tolerance-us")
            .and_then(|s| s.parse().ok())
            .unwrap_or(defaults.absolute_tolerance_us),
        gate_all: std::env::args().any(|a| a == "--all"),
    };

    let read = |path: &str| -> Vec<(String, f64)> {
        match std::fs::read_to_string(path) {
            Ok(text) => snapshot::parse(&text),
            Err(e) => {
                eprintln!("benchdiff: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let baseline = read(baseline_path);
    let current = read(current_path);

    let mut rows = vec![vec![
        "key".to_string(),
        "baseline".to_string(),
        "current".to_string(),
        "delta".to_string(),
        "verdict".to_string(),
    ]];
    let mut regressions = 0usize;
    for (key, base) in &baseline {
        let Some((_, cur)) = current.iter().find(|(k, _)| k == key) else {
            rows.push(vec![
                key.clone(),
                format!("{base:.3}"),
                "(missing)".to_string(),
                "-".to_string(),
                "MISSING".to_string(),
            ]);
            regressions += 1;
            continue;
        };
        let (verdict, delta) = judge(key, *base, *cur, &config);
        if verdict.fails() {
            regressions += 1;
        }
        let verdict = match verdict {
            Verdict::Info => "info",
            Verdict::Regressed => "REGRESSED",
            Verdict::RegressedUngated => "regressed (ungated)",
            Verdict::Ok => "ok",
        };
        rows.push(vec![
            key.clone(),
            format!("{base:.3}"),
            format!("{cur:.3}"),
            format!("{:+.1}%", 100.0 * delta),
            verdict.to_string(),
        ]);
    }
    for (key, cur) in &current {
        if !baseline.iter().any(|(k, _)| k == key) {
            rows.push(vec![
                key.clone(),
                "(new)".to_string(),
                format!("{cur:.3}"),
                "-".to_string(),
                "info".to_string(),
            ]);
        }
    }
    print!("{}", render_table(&rows));
    println!(
        "\n{} baseline keys, tolerance {:.0}% / {:.0} µs abs, gating {} -> {} regression(s)",
        baseline.len(),
        100.0 * config.relative_tolerance,
        config.absolute_tolerance_us,
        if config.gate_all {
            "all keys"
        } else {
            "ratio + _us keys"
        },
        regressions
    );
    if regressions > 0 {
        std::process::exit(1);
    }
}
