//! Snapshot regression diff: compares two flat benchmark snapshots
//! (`BENCH_sim.json` / `BENCH_serve.json`) and fails on regressions beyond
//! a tolerance.
//!
//! ```sh
//! cargo run -p aid_bench --bin benchdiff -- BASELINE CURRENT \
//!     [--tolerance=0.30] [--all]
//! ```
//!
//! Direction is inferred from the key suffix: `_per_s`, `_speedup`, and
//! `_hit_rate` are higher-is-better; `_ms` is lower-is-better; anything
//! else is informational. By default only the *ratio* keys (`_speedup`,
//! `_hit_rate`) gate the exit code — they are stable across machines and
//! load, whereas absolute rates on a shared runner can legitimately swing
//! by the full tolerance. `--all` gates every directional key, for diffing
//! two runs taken on the same quiet machine.

use aid_bench::{arg_value, render_table, snapshot};

#[derive(PartialEq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
    Info,
}

fn direction(key: &str) -> Direction {
    if key.ends_with("_per_s") || key.ends_with("_speedup") || key.ends_with("_hit_rate") {
        Direction::HigherIsBetter
    } else if key.ends_with("_ms") {
        Direction::LowerIsBetter
    } else {
        Direction::Info
    }
}

fn is_ratio_key(key: &str) -> bool {
    key.ends_with("_speedup") || key.ends_with("_hit_rate")
}

fn main() {
    let positional: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let [baseline_path, current_path] = positional.as_slice() else {
        eprintln!("usage: benchdiff BASELINE CURRENT [--tolerance=0.30] [--all]");
        std::process::exit(2);
    };
    let tolerance: f64 = arg_value("tolerance")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.30);
    let gate_all = std::env::args().any(|a| a == "--all");

    let read = |path: &str| -> Vec<(String, f64)> {
        match std::fs::read_to_string(path) {
            Ok(text) => snapshot::parse(&text),
            Err(e) => {
                eprintln!("benchdiff: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let baseline = read(baseline_path);
    let current = read(current_path);

    let mut rows = vec![vec![
        "key".to_string(),
        "baseline".to_string(),
        "current".to_string(),
        "delta".to_string(),
        "verdict".to_string(),
    ]];
    let mut regressions = 0usize;
    for (key, base) in &baseline {
        let Some((_, cur)) = current.iter().find(|(k, _)| k == key) else {
            rows.push(vec![
                key.clone(),
                format!("{base:.3}"),
                "(missing)".to_string(),
                "-".to_string(),
                "MISSING".to_string(),
            ]);
            regressions += 1;
            continue;
        };
        let delta = if *base != 0.0 { cur / base - 1.0 } else { 0.0 };
        let dir = direction(key);
        let regressed = match dir {
            Direction::HigherIsBetter => delta < -tolerance,
            Direction::LowerIsBetter => delta > tolerance,
            Direction::Info => false,
        };
        let gated = gate_all || is_ratio_key(key);
        let verdict = if dir == Direction::Info {
            "info"
        } else if regressed && gated {
            regressions += 1;
            "REGRESSED"
        } else if regressed {
            "regressed (ungated)"
        } else {
            "ok"
        };
        rows.push(vec![
            key.clone(),
            format!("{base:.3}"),
            format!("{cur:.3}"),
            format!("{:+.1}%", 100.0 * delta),
            verdict.to_string(),
        ]);
    }
    for (key, cur) in &current {
        if !baseline.iter().any(|(k, _)| k == key) {
            rows.push(vec![
                key.clone(),
                "(new)".to_string(),
                format!("{cur:.3}"),
                "-".to_string(),
                "info".to_string(),
            ]);
        }
    }
    print!("{}", render_table(&rows));
    println!(
        "\n{} baseline keys, tolerance {:.0}%, gating {} -> {} regression(s)",
        baseline.len(),
        100.0 * tolerance,
        if gate_all { "all keys" } else { "ratio keys" },
        regressions
    );
    if regressions > 0 {
        std::process::exit(1);
    }
}
