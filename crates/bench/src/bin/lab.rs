//! The scenario-lab driver: a fixed-seed fuzz sweep of randomized
//! bug-class scenarios through the differential conformance harness.
//!
//! ```sh
//! cargo run -p aid_bench --bin lab --release -- \
//!     [--scenarios=200] [--seed=1] [--workers=4] [--stride=1] \
//!     [--backend=both|tree|bytecode] [--streaming=on|off]
//! ```
//!
//! Every scenario runs the whole pipeline — codec round-trips, streaming
//! ingestion under adversarial framing, incremental-vs-batch store
//! analysis at every prefix, engine discovery across worker counts and
//! against the intervention cache, and a ground-truth lineage check on the
//! discovered causes. Any invariant violation is printed and the process
//! exits nonzero (CI treats that as a failure). The final `AID-LAB {json}`
//! line is the machine-readable summary.

use aid_bench::{arg_value, render_table};
use aid_lab::{
    check_scenario_on, generate_validated, BackendMode, BugClass, Conformance, LabParams,
};
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    let scenarios: u64 = arg_value("scenarios")
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let base_seed: u64 = arg_value("seed").and_then(|s| s.parse().ok()).unwrap_or(1);
    let workers: usize = arg_value("workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let stride: usize = arg_value("stride")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let backend = arg_value("backend")
        .map(|s| BackendMode::parse(&s).unwrap_or_else(|| panic!("unknown backend '{s}'")))
        .unwrap_or(BackendMode::Both);
    let streaming = arg_value("streaming").map_or(true, |s| s != "off");

    let conf = Conformance {
        params: LabParams::default(),
        workers,
        prefix_stride: stride,
        discovery_seed: 11,
        backend,
        streaming,
    };

    println!(
        "Running {scenarios} scenarios (seeds {base_seed}..{}) through the \
         conformance harness…\n",
        base_seed + scenarios
    );
    let start = Instant::now();
    let mut reports = Vec::new();
    for seed in base_seed..base_seed + scenarios {
        let (scenario, corpus) = generate_validated(&conf.params, seed);
        let report = check_scenario_on(&scenario, &corpus, &conf);
        for v in &report.violations {
            eprintln!("VIOLATION {v}");
        }
        reports.push(report);
    }
    let elapsed = start.elapsed();

    // Per-bug-class rollup.
    let mut rows = vec![vec![
        "class".to_string(),
        "scenarios".to_string(),
        "traces".to_string(),
        "rounds".to_string(),
        "root found".to_string(),
        "kind match".to_string(),
        "mechanism hit".to_string(),
        "violations".to_string(),
    ]];
    let mut by_class: BTreeMap<&'static str, Vec<&aid_lab::ScenarioReport>> = BTreeMap::new();
    for r in &reports {
        by_class.entry(r.bug_class.name()).or_default().push(r);
    }
    for class in BugClass::ALL {
        let Some(group) = by_class.get(class.name()) else {
            continue;
        };
        rows.push(vec![
            class.name().to_string(),
            group.len().to_string(),
            group.iter().map(|r| r.traces).sum::<usize>().to_string(),
            group
                .iter()
                .map(|r| r.aid_rounds)
                .sum::<usize>()
                .to_string(),
            group.iter().filter(|r| r.root_found).count().to_string(),
            group
                .iter()
                .filter(|r| r.root_kind_match)
                .count()
                .to_string(),
            group
                .iter()
                .filter(|r| r.root_on_mechanism)
                .count()
                .to_string(),
            group
                .iter()
                .map(|r| r.violations.len())
                .sum::<usize>()
                .to_string(),
        ]);
    }
    print!("{}", render_table(&rows));

    let total = reports.len();
    let violations: usize = reports.iter().map(|r| r.violations.len()).sum();
    let traces: usize = reports.iter().map(|r| r.traces).sum();
    let root_found = reports.iter().filter(|r| r.root_found).count();
    let kind_match = reports.iter().filter(|r| r.root_kind_match).count();
    let mechanism = reports.iter().filter(|r| r.root_on_mechanism).count();
    println!(
        "\n{total} scenarios ({traces} traces) in {elapsed:?} \
         ({:.1} scenarios/s) — {violations} violations",
        total as f64 / elapsed.as_secs_f64()
    );

    let mix: Vec<String> = BugClass::ALL
        .iter()
        .map(|c| {
            format!(
                "\"{}\":{}",
                c.name(),
                by_class.get(c.name()).map_or(0, |g| g.len())
            )
        })
        .collect();
    println!(
        "AID-LAB {{\"scenarios\":{},\"base_seed\":{},\"workers\":{},\
         \"elapsed_s\":{:.6},\"scenarios_per_s\":{:.3},\"traces\":{},\
         \"bug_class_mix\":{{{}}},\"root_found\":{},\"root_kind_match\":{},\
         \"root_on_mechanism\":{},\"violations\":{}}}",
        total,
        base_seed,
        workers,
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64(),
        traces,
        mix.join(","),
        root_found,
        kind_match,
        mechanism,
        violations
    );

    // Record sweep throughput next to the simulator/engine keys so CI can
    // diff it (the sweep is the end-to-end pipeline benchmark).
    aid_bench::snapshot::merge_write(
        "BENCH_sim.json",
        &[(
            "lab_scenarios_per_s".to_string(),
            total as f64 / elapsed.as_secs_f64(),
        )],
    );

    if violations > 0 {
        std::process::exit(1);
    }
}
