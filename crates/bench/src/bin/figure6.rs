//! Regenerates **Figure 6**: the theoretical comparison between CPD (AID)
//! and plain group testing on the symmetric AC-DAG — search-space sizes,
//! information-theoretic lower bounds, and intervention upper bounds —
//! plus Example 3's 15-vs-64 search-space count.
//!
//! ```sh
//! cargo run -p aid_bench --bin figure6 --release
//! ```

use aid_bench::render_table;
use aid_theory::{chain_count, closure_from_edges, figure6_row, symmetric_cpd_search_space};

fn main() {
    println!("Example 3 (Figure 5a): two parallel 3-chains");
    let closure = closure_from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
    println!(
        "  CPD search space (chain-subset DP): {}   GT search space: 2^6 = 64",
        chain_count(&closure).unwrap()
    );
    println!(
        "  symmetric closed form (B(2^n−1)+1)^J with J=1,B=2,n=3: {}\n",
        symmetric_cpd_search_space(1, 2, 3).unwrap()
    );

    println!("Figure 6 — symmetric AC-DAG (J junctions × B branches × n predicates), S1=S2=2:\n");
    let mut rows = vec![vec![
        "J".into(),
        "B".into(),
        "n".into(),
        "N".into(),
        "D".into(),
        "log₂ W_CPD".into(),
        "log₂ W_GT".into(),
        "CPD lower".into(),
        "GT lower".into(),
        "AID upper".into(),
        "TAGT upper".into(),
    ]];
    for (j, b, n) in [
        (1u64, 2u64, 3u64),
        (2, 4, 4),
        (3, 8, 4),
        (4, 8, 6),
        (3, 16, 6),
        (2, 30, 3),
    ] {
        let total = j * b * n;
        let d = ((total as f64) / (total as f64).log2()).floor().max(1.0) as u64;
        let d = d.min(j * n); // D is bounded by the longest path in CPD
        let row = figure6_row(j, b, n, d, 2, 2);
        rows.push(vec![
            j.to_string(),
            b.to_string(),
            n.to_string(),
            total.to_string(),
            d.to_string(),
            format!("{:.1}", row.cpd_search_log2),
            format!("{:.1}", row.gt_search_log2),
            format!("{:.1}", row.cpd_lower),
            format!("{:.1}", row.gt_lower),
            format!("{:.1}", row.aid_upper),
            format!("{:.1}", row.tagt_upper),
        ]);
    }
    print!("{}", render_table(&rows));
    println!(
        "\nReading: CPD's search space and bounds sit strictly inside GT's; the gap \
         grows with branch width B — the structure AID exploits and GT ignores."
    );
}
