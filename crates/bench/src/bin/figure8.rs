//! Regenerates **Figure 8**: average and worst-case intervention counts vs
//! the maximum thread count `MAXt`, for TAGT, AID-P-B, AID-P, and AID, over
//! synthetically generated applications with known root causes.
//!
//! ```sh
//! cargo run -p aid_bench --bin figure8 --release [--apps=500] [--csv]
//! ```

use aid_bench::{arg_value, render_table};
use aid_core::{discover, OracleExecutor, Strategy};
use aid_synth::{generate, SynthParams};
use aid_util::Summary;

fn main() {
    let apps: u64 = arg_value("apps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let csv = std::env::args().any(|a| a == "--csv");
    let settings = [2u32, 10, 18, 26, 34, 42];
    let strategies = Strategy::PAPER_SET;

    println!(
        "Figure 8 — synthetic benchmark: {apps} applications per MAXt setting, \
         N ∈ [4, 284], D ∈ [1, N/log N]\n"
    );
    if csv {
        println!("maxt,avg_n,strategy,avg_rounds,worst_rounds");
    }

    let mut avg_rows = vec![{
        let mut h = vec!["MAXt".to_string(), "avg N".to_string()];
        h.extend(strategies.iter().map(|s| s.name().to_string()));
        h
    }];
    let mut worst_rows = avg_rows.clone();

    for &maxt in &settings {
        let params = SynthParams {
            max_threads: maxt,
            ..Default::default()
        };
        let mut n_summary = Summary::new();
        let mut per_strategy: Vec<Summary> = strategies.iter().map(|_| Summary::new()).collect();
        for app_seed in 0..apps {
            let app = generate(
                &params,
                app_seed.wrapping_mul(0x9e37_79b9).wrapping_add(maxt as u64),
            );
            n_summary.push(app.n as f64);
            for (si, &strategy) in strategies.iter().enumerate() {
                let mut oracle = OracleExecutor::new(app.truth.clone());
                let r = discover(&app.dag, &mut oracle, strategy, app_seed);
                debug_assert_eq!(r.causal, app.truth.path_ids());
                per_strategy[si].push(r.rounds as f64);
            }
        }
        let mut avg_row = vec![maxt.to_string(), format!("{:.0}", n_summary.mean())];
        let mut worst_row = vec![maxt.to_string(), format!("{:.0}", n_summary.mean())];
        for (si, s) in per_strategy.iter().enumerate() {
            avg_row.push(format!("{:.1}", s.mean()));
            worst_row.push(format!("{:.0}", s.max()));
            if csv {
                println!(
                    "{},{:.1},{},{:.2},{:.0}",
                    maxt,
                    n_summary.mean(),
                    strategies[si].name(),
                    s.mean(),
                    s.max()
                );
            }
        }
        avg_rows.push(avg_row);
        worst_rows.push(worst_row);
    }

    println!("Average #interventions (left panel):");
    print!("{}", render_table(&avg_rows));
    println!("\nWorst-case #interventions (right panel):");
    print!("{}", render_table(&worst_rows));
    println!(
        "\nExpected shape (paper): AID ≤ AID-P ≤ AID-P-B ≤ TAGT throughout; the \
         worst-case gap widens with MAXt (paper: TAGT peaks at 217, AID at 52)."
    );
}
