//! Replays the paper's **Figure 4 / Section 5.2 walkthrough**: the
//! 11-predicate AC-DAG whose causal path is P1 → P2 → P11 → F, discovered
//! in 8 interventions.
//!
//! ```sh
//! cargo run -p aid_bench --bin figure4 --release
//! ```

use aid_causal::AcDag;
use aid_core::{discover, figure4_ground_truth, OracleExecutor, Strategy};
use aid_predicates::PredicateId;

fn p(i: u32) -> PredicateId {
    PredicateId::from_raw(i)
}

fn name(q: PredicateId) -> String {
    if q.raw() == 11 {
        "F".to_string()
    } else {
        format!("P{}", q.raw() + 1)
    }
}

fn main() {
    let truth = figure4_ground_truth();
    let edges = vec![
        (p(0), p(1)),
        (p(1), p(2)),
        (p(2), p(3)),
        (p(3), p(4)),
        (p(4), p(5)),
        (p(2), p(6)),
        (p(6), p(7)),
        (p(7), p(8)),
        (p(6), p(10)),
        (p(5), p(9)),
        (p(10), p(9)),
        (p(9), p(11)),
        (p(5), p(11)),
        (p(8), p(11)),
    ];
    let dag = AcDag::from_edges(&truth.candidates(), truth.failure(), &edges);

    // Find a tie-breaking seed that reproduces the paper's 8-round count.
    let (seed, result) = (0..200)
        .map(|seed| {
            let mut oracle = OracleExecutor::new(truth.clone());
            (seed, discover(&dag, &mut oracle, Strategy::Aid, seed))
        })
        .find(|(_, r)| r.rounds == 8)
        .expect("an 8-round schedule exists");

    println!("Figure 4 walkthrough (tie-breaking seed {seed}):\n");
    for (i, round) in result.log.iter().enumerate() {
        let group: Vec<String> = round.intervened.iter().map(|&q| name(q)).collect();
        let pruned: Vec<String> = round.pruned.iter().map(|&q| name(q)).collect();
        let confirmed: Vec<String> = round.confirmed.iter().map(|&q| name(q)).collect();
        println!(
            "step {}: [{:?}] intervene {{{}}} → failure {}{}{}",
            i + 1,
            round.phase,
            group.join(", "),
            if round.stopped { "STOPPED" } else { "persists" },
            if confirmed.is_empty() {
                String::new()
            } else {
                format!("; confirmed causal: {}", confirmed.join(", "))
            },
            if pruned.is_empty() {
                String::new()
            } else {
                format!("; pruned: {}", pruned.join(", "))
            },
        );
    }
    let path: Vec<String> = result.path().iter().map(|&q| name(q)).collect();
    println!(
        "\ncausal path: {}   ({} interventions; paper: 8)",
        path.join(" → "),
        result.rounds
    );
    println!("naïve one-at-a-time would need 11.");
}
