//! Regenerates **Figure 7**: the six real-world case studies — SD's
//! fully-discriminative predicate counts, causal-path lengths, and AID vs
//! TAGT intervention counts, measured against the paper's rows.
//!
//! ```sh
//! cargo run -p aid_bench --bin figure7 --release [--seed=11]
//! ```

use aid_bench::{arg_value, render_table};
use aid_cases::{all_cases, run_case};

fn main() {
    let seed: u64 = arg_value("seed").and_then(|s| s.parse().ok()).unwrap_or(11);
    println!("Figure 7 — case studies (seed {seed}); paper numbers in parentheses\n");
    let mut rows = vec![vec![
        "Application".to_string(),
        "#Discrim preds (SD)".to_string(),
        "#Preds in causal path".to_string(),
        "AID interventions".to_string(),
        "TAGT measured".to_string(),
        "TAGT worst case D⌈log₂N⌉".to_string(),
        "Root cause".to_string(),
    ]];
    for case in all_cases() {
        let r = run_case(&case, seed);
        rows.push(vec![
            r.name.to_string(),
            format!("{} ({})", r.sd_predicates, r.paper.sd_predicates),
            format!("{} ({})", r.causal_path, r.paper.causal_path),
            format!("{} ({})", r.aid_rounds, r.paper.aid),
            format!("{}", r.tagt_rounds),
            format!("{} ({})", r.tagt_analytic, r.paper.tagt),
            if r.root_matches {
                "matches developer fix".to_string()
            } else {
                format!("MISMATCH: {}", r.root_description)
            },
        ]);
    }
    print!("{}", render_table(&rows));

    println!("\nExplanations:");
    for case in all_cases() {
        let r = run_case(&case, seed);
        println!("\n--- {} ({}) ---", r.name, case.reference);
        print!("{}", r.explanation);
    }
}
