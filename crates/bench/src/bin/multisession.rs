//! Multi-session engine scenario: queue every case study (and their TAGT
//! baselines) plus a batch of Figure-8 synthetic sessions onto one engine,
//! then print the per-session outcomes and the engine telemetry.
//!
//! ```sh
//! cargo run -p aid_bench --bin multisession --release \
//!     [--workers=4] [--repeats=2] [--synthetic=6]
//! ```
//!
//! This is the service-shaped workload the ROADMAP's north star describes:
//! many concurrent debugging sessions over a mix of programs, scheduled
//! across a fixed pool with a shared memoizing intervention cache. Watch
//! the `cache` line: with `--repeats` > 1 the repeated sessions execute
//! nothing at all.

use aid_bench::{arg_value, render_table};
use aid_cases::{all_cases, analyze_case, collect_logs};
use aid_core::Strategy;
use aid_engine::{DiscoveryJob, Engine, EngineConfig};
use aid_sim::Simulator;
use aid_synth::{generate, SynthParams};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let workers: usize = arg_value("workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let repeats: usize = arg_value("repeats")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let synthetic: u64 = arg_value("synthetic")
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    println!("Preparing workloads (observation phase, outside the engine)…");
    let mut jobs = Vec::new();

    // The six case studies: AID and the TAGT baseline per case.
    for case in all_cases() {
        let set = collect_logs(&case);
        let analysis = analyze_case(&case, &set);
        let sim = Arc::new(Simulator::new(case.program.clone()));
        let catalog = Arc::new(analysis.extraction.catalog.clone());
        let dag = Arc::new(analysis.dag.clone());
        for strategy in [Strategy::Aid, Strategy::Tagt] {
            for r in 0..repeats {
                jobs.push(DiscoveryJob::sim(
                    format!("{}/{}/run{r}", case.name, strategy.name()),
                    Arc::clone(&dag),
                    Arc::clone(&sim),
                    Arc::clone(&catalog),
                    analysis.extraction.failure,
                    case.runs_per_round,
                    1_000_000,
                    strategy,
                    11,
                ));
            }
        }
    }

    // Figure-8 synthetic sessions against the exact oracle.
    let params = SynthParams::default();
    for app_seed in 0..synthetic {
        let app = generate(&params, app_seed);
        for r in 0..repeats {
            jobs.push(DiscoveryJob::oracle(
                format!("synthetic{app_seed}/run{r}"),
                Arc::new(app.dag.clone()),
                app.truth.clone(),
                Strategy::Aid,
                app_seed,
            ));
        }
    }

    let total = jobs.len();
    println!("Queuing {total} sessions on a {workers}-worker engine…\n");
    let engine = Engine::new(EngineConfig {
        workers,
        max_pending: 2 * workers,
        ..EngineConfig::default()
    });
    let start = Instant::now();
    let results = engine.run_all(jobs);
    let elapsed = start.elapsed();

    let mut rows = vec![vec![
        "session".to_string(),
        "rounds".to_string(),
        "causal path".to_string(),
    ]];
    for r in &results {
        rows.push(vec![
            r.name.clone(),
            r.result.rounds.to_string(),
            r.result
                .path()
                .iter()
                .map(|p| format!("P{}", p.raw()))
                .collect::<Vec<_>>()
                .join("→"),
        ]);
    }
    print!("{}", render_table(&rows));

    let stats = engine.stats();
    println!(
        "\n{total} sessions in {elapsed:?} on {workers} workers \
         ({:.1} sessions/s)",
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "executions: {} | cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
        stats.executions,
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.cache_hit_rate(),
        stats.cache_entries
    );
    println!(
        "wall-batches: {} | per-worker tasks: {:?} | inline (help-first) tasks: {} | peak pending: {}",
        stats.wall_batches, stats.tasks_per_worker, stats.inline_tasks, stats.peak_pending
    );

    // Machine-readable summary: one `AID-MULTISESSION {json}` line, so bench
    // harnesses can scrape cache hit-rate and per-worker utilization without
    // parsing the human tables above.
    let per_worker = stats
        .tasks_per_worker
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let total_tasks: u64 = stats.tasks_per_worker.iter().sum::<u64>() + stats.inline_tasks;
    let utilization: Vec<String> = stats
        .tasks_per_worker
        .iter()
        .map(|&t| format!("{:.4}", t as f64 / total_tasks.max(1) as f64))
        .collect();
    println!(
        "AID-MULTISESSION {{\"sessions\":{},\"workers\":{},\"elapsed_s\":{:.6},\
         \"sessions_per_s\":{:.3},\"executions\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"cache_hit_rate\":{:.4},\"cache_entries\":{},\
         \"cache_evictions\":{},\"wall_batches\":{},\"tasks_per_worker\":[{}],\
         \"worker_utilization\":[{}],\"inline_tasks\":{},\"peak_pending\":{}}}",
        total,
        workers,
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64(),
        stats.executions,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate(),
        stats.cache_entries,
        stats.cache_evictions,
        stats.wall_batches,
        per_worker,
        utilization.join(","),
        stats.inline_tasks,
        stats.peak_pending
    );
}
