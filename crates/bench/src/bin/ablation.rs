//! Ablations beyond the paper's AID-P / AID-P-B variants, covering the
//! design decisions DESIGN.md calls out:
//!
//! 1. the branch-pruning/predicate-pruning 2×2 matrix (Custom strategy);
//! 2. pruning-quorum sensitivity under flaky observations;
//! 3. precedence-policy choice (type-aware vs naive start-time) on a real
//!    case study.
//!
//! ```sh
//! cargo run -p aid_bench --bin ablation --release [--apps=120]
//! ```

use aid_bench::{arg_value, render_table};
use aid_causal::StartTimePolicy;
use aid_core::{
    discover, discover_with_options, DiscoverOptions, FlakyOracle, OracleExecutor, Strategy,
};
use aid_synth::{generate, SynthParams};
use aid_util::Summary;

fn main() {
    let apps: u64 = arg_value("apps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);

    // --- 1. the 2×2 phase matrix ---
    println!("Ablation 1 — phase matrix over {apps} synthetic apps (MAXt = 20):\n");
    let params = SynthParams {
        max_threads: 20,
        ..Default::default()
    };
    let mut rows = vec![vec![
        "branch pruning".into(),
        "predicate pruning".into(),
        "avg rounds".into(),
        "worst rounds".into(),
    ]];
    for (branch, prune) in [(false, false), (false, true), (true, false), (true, true)] {
        let strategy = Strategy::Custom { branch, prune };
        let mut s = Summary::new();
        for seed in 0..apps {
            let app = generate(&params, seed);
            let mut oracle = OracleExecutor::new(app.truth.clone());
            s.push(discover(&app.dag, &mut oracle, strategy, seed).rounds as f64);
        }
        rows.push(vec![
            if branch { "on" } else { "off" }.into(),
            if prune { "on" } else { "off" }.into(),
            format!("{:.1}", s.mean()),
            format!("{:.0}", s.max()),
        ]);
    }
    print!("{}", render_table(&rows));

    // --- 2. pruning quorum under observation noise ---
    println!("\nAblation 2 — pruning quorum under 3% observation noise (7 runs/round):\n");
    let truth = aid_core::figure4_ground_truth();
    let dag = {
        use aid_predicates::PredicateId;
        let p = |i: u32| PredicateId::from_raw(i);
        let edges = vec![
            (p(0), p(1)),
            (p(1), p(2)),
            (p(2), p(3)),
            (p(3), p(4)),
            (p(4), p(5)),
            (p(2), p(6)),
            (p(6), p(7)),
            (p(7), p(8)),
            (p(6), p(10)),
            (p(5), p(9)),
            (p(10), p(9)),
            (p(9), p(11)),
            (p(5), p(11)),
            (p(8), p(11)),
        ];
        aid_causal::AcDag::from_edges(&truth.candidates(), truth.failure(), &edges)
    };
    let mut rows = vec![vec![
        "quorum".into(),
        "exact recoveries /40".into(),
        "avg rounds".into(),
    ]];
    for quorum in [1usize, 2, 4, 5, 7] {
        let mut exact = 0;
        let mut s = Summary::new();
        for seed in 0..40 {
            let mut flaky = FlakyOracle::new(truth.clone(), 0.03, 7, seed);
            let r = discover_with_options(
                &dag,
                &mut flaky,
                Strategy::Aid,
                seed,
                DiscoverOptions {
                    prune_quorum: quorum,
                },
            );
            if r.causal == truth.path_ids() {
                exact += 1;
            }
            s.push(r.rounds as f64);
        }
        rows.push(vec![
            quorum.to_string(),
            exact.to_string(),
            format!("{:.1}", s.mean()),
        ]);
    }
    print!("{}", render_table(&rows));
    println!("(quorum = 1 is the paper's single-counter-example rule)");

    // --- 3. precedence-policy choice on the Npgsql case ---
    println!("\nAblation 3 — precedence policy on the Npgsql case study:\n");
    let case = aid_cases::npgsql::case();
    let sim = aid_sim::Simulator::new(case.program.clone());
    let logs = sim.collect_balanced(50, 50, 60_000);
    for (label, analysis) in [
        (
            "type-aware (paper §4)",
            aid_core::analyze(&logs, &case.config),
        ),
        (
            "naive start-time",
            aid_core::analyze_with_policy(&logs, &case.config, &StartTimePolicy),
        ),
    ] {
        let mut exec = aid_sim::SimExecutor::new(
            sim.clone(),
            analysis.extraction.catalog.clone(),
            analysis.extraction.failure,
            case.runs_per_round,
            1_000_000,
        );
        let r = discover(&analysis.dag, &mut exec, Strategy::Aid, 11);
        println!(
            "  {label:<22} dag nodes {:>3}  rounds {:>3}  path {:?}",
            analysis.dag.len(),
            r.rounds,
            r.path()
                .iter()
                .map(|&q| analysis.extraction.catalog.describe(q, &logs))
                .collect::<Vec<_>>()
        );
    }
    println!(
        "\nBoth policies are sound (any per-run total order is), but the \
         type-aware anchors order nested exception/duration predicates \
         causally, giving cleaner chains."
    );
}
