//! Flat benchmark snapshots (`BENCH_sim.json`, `BENCH_serve.json`) at the
//! repository root.
//!
//! A snapshot is one JSON object mapping metric names to numbers — nothing
//! nested, so it can be parsed and diffed without a JSON dependency.
//! Benches and load binaries *merge* their keys into the file (other
//! harnesses' keys survive), and the `benchdiff` binary compares two
//! snapshots with a regression tolerance. By convention `_per_s` and
//! `_speedup` suffixes mean higher-is-better; those are the keys CI guards.

use std::path::{Path, PathBuf};

/// The workspace root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Parses a flat `{"key": number, ...}` object. Unparseable fragments are
/// skipped rather than fatal — a half-written snapshot should degrade to
/// "missing keys", not kill the harness that wants to overwrite it.
pub fn parse(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let body = text.trim().trim_start_matches('{').trim_end_matches('}');
    for pair in body.split(',') {
        let Some((k, v)) = pair.split_once(':') else {
            continue;
        };
        let key = k.trim().trim_matches('"').to_string();
        if key.is_empty() {
            continue;
        }
        if let Ok(value) = v.trim().parse::<f64>() {
            out.push((key, value));
        }
    }
    out
}

/// Renders entries as a stable (sorted, one key per line) JSON object.
pub fn render(entries: &[(String, f64)]) -> String {
    let mut sorted: Vec<&(String, f64)> = entries.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (k, v)) in sorted.iter().enumerate() {
        // Finite, non-scientific formatting so `parse` round-trips.
        out.push_str(&format!("  \"{k}\": {v:.4}"));
        out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out.push('\n');
    out
}

/// Merges `entries` into `<repo root>/<file_name>` (new keys win over the
/// file's) and returns the path written.
pub fn merge_write(file_name: &str, entries: &[(String, f64)]) -> PathBuf {
    let path = repo_root().join(file_name);
    let mut merged: Vec<(String, f64)> = std::fs::read_to_string(&path)
        .map(|t| parse(&t))
        .unwrap_or_default();
    for (k, v) in entries {
        match merged.iter_mut().find(|(mk, _)| mk == k) {
            Some(slot) => slot.1 = *v,
            None => merged.push((k.clone(), *v)),
        }
    }
    std::fs::write(&path, render(&merged)).expect("write benchmark snapshot");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trips() {
        let entries = vec![
            ("b_per_s".to_string(), 123.5),
            ("a_speedup".to_string(), 4.25),
        ];
        let text = render(&entries);
        let back = parse(&text);
        // Render sorts; parse preserves file order.
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "a_speedup");
        assert!((back[0].1 - 4.25).abs() < 1e-9);
        assert_eq!(back[1].0, "b_per_s");
        assert!((back[1].1 - 123.5).abs() < 1e-9);
    }

    #[test]
    fn parse_skips_garbage() {
        let back = parse("{\"ok\": 1.0, nonsense, \"bad\": x, \"fine\": 2}");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "ok");
        assert_eq!(back[1].0, "fine");
    }
}
