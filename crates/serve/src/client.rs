//! A blocking client for the debugging service.
//!
//! [`AidClient`] wraps any byte stream (TCP, the in-process duplex, or
//! anything else implementing `Read + Write`) and exposes the protocol as
//! typed calls. Overload rejections are a *typed outcome*
//! ([`Admission::Rejected`]), not an error — shedding load at the
//! admission bound is designed server behavior the caller is expected to
//! handle (back off, retry, or shed in turn).

use crate::protocol::{
    AnalysisSpec, ErrorCode, OverloadScope, ProgramSpec, Request, Response, ServerStats,
    SessionState,
};
use crate::transport::{DuplexStream, InProcConnector};
use crate::wire::{self, FrameError, WireError};
use aid_core::{DiscoveryResult, Strategy};
use aid_watch::WatchEvent;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The server sent bytes violating the wire format.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's detail message.
        message: String,
    },
    /// The server answered with a frame the call does not expect.
    Unexpected {
        /// What the call was waiting for.
        expected: &'static str,
        /// What arrived instead.
        got: String,
    },
    /// The server reports the session died without a result.
    SessionLost {
        /// The lost session's id.
        session: u32,
    },
    /// The server does not know the session id (already delivered,
    /// cancelled, or never submitted on this connection).
    SessionUnknown {
        /// The unknown session id.
        session: u32,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::Unexpected { expected, got } => {
                write!(f, "expected {expected}, server sent {got}")
            }
            ClientError::SessionLost { session } => {
                write!(f, "session {session} died server-side without a result")
            }
            ClientError::SessionUnknown { session } => {
                write!(f, "server does not know session {session}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Wire(e) => ClientError::Wire(e),
            // Clients set no read timeout, so this only surfaces if a
            // caller wraps a timed stream themselves.
            FrameError::IdleTimeout => ClientError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "read timed out between frames",
            )),
        }
    }
}

/// The typed outcome of a submission.
#[derive(Clone, Debug, PartialEq)]
pub enum Admission {
    /// Admitted; poll or stream this session id.
    Accepted(u32),
    /// Refused by admission control.
    Rejected(Overload),
}

/// An admission-control rejection, echoing the server's bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overload {
    /// Which bound refused the submission.
    pub scope: OverloadScope,
    /// Sessions in flight at that bound when it refused.
    pub in_flight: u32,
    /// The bound itself.
    pub limit: u32,
}

/// Upload totals echoed by the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UploadReport {
    /// Complete traces the server ingested from this upload.
    pub traces: u64,
    /// Records the server quarantined.
    pub quarantined: u64,
    /// Whether the upload yielded an analysis (≥ 1 failing trace).
    pub analyzed: bool,
}

/// A discovery session's parameters, shared by every submission call.
#[derive(Clone, Debug)]
pub struct SubmitSpec {
    /// Session name (server-side label, echoed nowhere else).
    pub name: String,
    /// The intervention substrate recipe.
    pub program: ProgramSpec,
    /// Discovery strategy.
    pub strategy: Strategy,
    /// Tie-breaking seed for the discovery algorithms.
    pub discovery_seed: u64,
    /// Intervention runs per round (ignored for `Synth`).
    pub runs_per_round: u32,
    /// First intervention seed (ignored for `Synth`).
    pub first_seed: u64,
    /// Definition-2 prune quorum.
    pub prune_quorum: u32,
}

impl SubmitSpec {
    /// A spec with the workspace-conventional defaults (AID strategy,
    /// prune quorum 1, intervention seeds starting at 1_000_000).
    pub fn new(name: impl Into<String>, program: ProgramSpec) -> SubmitSpec {
        SubmitSpec {
            name: name.into(),
            program,
            strategy: Strategy::Aid,
            discovery_seed: 11,
            runs_per_round: 10,
            first_seed: 1_000_000,
            prune_quorum: 1,
        }
    }
}

/// A standing query's parameters.
#[derive(Clone, Debug)]
pub struct WatchSpec {
    /// Watcher name (server-side label).
    pub name: String,
    /// The extraction-configuration recipe for the streamed corpus.
    pub analysis: AnalysisSpec,
    /// The intervention substrate recipe (`Synth` is refused).
    pub program: ProgramSpec,
    /// Discovery strategy for every (re)submission.
    pub strategy: Strategy,
    /// Tie-breaking seed, fixed across re-runs.
    pub discovery_seed: u64,
    /// Intervention runs per round.
    pub runs_per_round: u32,
    /// First intervention seed.
    pub first_seed: u64,
    /// Definition-2 prune quorum.
    pub prune_quorum: u32,
    /// Retain at most this many traces (`None` = unbounded).
    pub retention_traces: Option<u64>,
    /// Retain traces at most this many appends old (`None` = unbounded).
    pub retention_age: Option<u64>,
    /// Lifetime probe budget in intervention runs (`None` = unbounded).
    pub max_probe_runs: Option<u64>,
}

impl WatchSpec {
    /// A spec with the workspace-conventional defaults and unbounded
    /// retention/budget.
    pub fn new(name: impl Into<String>, analysis: AnalysisSpec, program: ProgramSpec) -> WatchSpec {
        WatchSpec {
            name: name.into(),
            analysis,
            program,
            strategy: Strategy::Aid,
            discovery_seed: 11,
            runs_per_round: 10,
            first_seed: 1_000_000,
            prune_quorum: 1,
            retention_traces: None,
            retention_age: None,
            max_probe_runs: None,
        }
    }
}

/// One `StreamTail` round-trip's outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct TailReport {
    /// Complete traces the watcher has ingested so far.
    pub traces: u64,
    /// The events the server-side tick over this tail produced.
    pub events: Vec<WatchEvent>,
}

/// A blocking protocol client over any byte stream.
pub struct AidClient<C: Read + Write> {
    conn: C,
    max_frame_len: usize,
}

impl AidClient<TcpStream> {
    /// Connects over TCP (`TCP_NODELAY` on: the protocol is
    /// request/response with small frames).
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<AidClient<TcpStream>> {
        let conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true)?;
        Ok(AidClient::new(conn))
    }
}

impl AidClient<DuplexStream> {
    /// Connects to an in-process server through its connector.
    pub fn connect_in_proc(connector: &InProcConnector) -> io::Result<AidClient<DuplexStream>> {
        Ok(AidClient::new(connector.connect()?))
    }
}

impl<C: Read + Write> AidClient<C> {
    /// Wraps an already-connected byte stream.
    pub fn new(conn: C) -> AidClient<C> {
        AidClient {
            conn,
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        wire::write_frame(&mut self.conn, &request.encode())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let Some((kind, payload)) = wire::read_frame(&mut self.conn, self.max_frame_len)? else {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server hung up mid-conversation",
            )));
        };
        let response = Response::decode_payload(kind, &payload).map_err(ClientError::Wire)?;
        if let Response::Error { code, message } = response {
            return Err(ClientError::Server { code, message });
        }
        Ok(response)
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        if let Err(send_err) = self.send(request) {
            // A refusing server (connection cap, drain) writes one typed
            // Error frame and hangs up; depending on timing our write can
            // fail before that refusal is read. Prefer the refusal already
            // sitting in the receive buffer over the write race.
            if matches!(&send_err, ClientError::Io(e) if e.kind() == io::ErrorKind::BrokenPipe) {
                if let Err(server_err @ ClientError::Server { .. }) = self.recv() {
                    return Err(server_err);
                }
            }
            return Err(send_err);
        }
        self.recv()
    }

    /// Opens the conversation; returns the server's protocol version and
    /// self-identification.
    pub fn hello(&mut self, client: &str) -> Result<(u8, String), ClientError> {
        match self.call(&Request::Hello {
            client: client.to_string(),
        })? {
            Response::HelloOk { version, server } => Ok((version, server)),
            other => Err(unexpected("HelloOk", other)),
        }
    }

    /// Uploads one encoded trace corpus in `chunk`-byte pieces (chunks may
    /// split lines anywhere — the server's streaming decoder reassembles),
    /// then finalizes it into a fresh analysis extracted under `analysis`.
    /// Any previously uploaded corpus on this connection is replaced.
    pub fn upload(
        &mut self,
        encoded: &[u8],
        chunk: usize,
        analysis: AnalysisSpec,
    ) -> Result<UploadReport, ClientError> {
        self.expect_upload_ack(&Request::BeginUpload { analysis })?;
        for piece in encoded.chunks(chunk.max(1)) {
            self.expect_upload_ack(&Request::UploadChunk {
                bytes: piece.to_vec(),
            })?;
        }
        let (traces, quarantined, analyzed) = self.expect_upload_ack(&Request::FinishUpload)?;
        Ok(UploadReport {
            traces,
            quarantined,
            analyzed,
        })
    }

    fn expect_upload_ack(&mut self, request: &Request) -> Result<(u64, u64, bool), ClientError> {
        match self.call(request)? {
            Response::UploadAck {
                traces,
                quarantined,
                analyzed,
            } => Ok((traces, quarantined, analyzed)),
            other => Err(unexpected("UploadAck", other)),
        }
    }

    /// Submits a discovery session. Overload rejection is a typed
    /// [`Admission::Rejected`], not an `Err`.
    pub fn submit(&mut self, spec: &SubmitSpec) -> Result<Admission, ClientError> {
        let request = Request::SubmitDiscovery {
            name: spec.name.clone(),
            program: spec.program.clone(),
            strategy: spec.strategy,
            discovery_seed: spec.discovery_seed,
            runs_per_round: spec.runs_per_round,
            first_seed: spec.first_seed,
            prune_quorum: spec.prune_quorum,
        };
        match self.call(&request)? {
            Response::Submitted { session } => Ok(Admission::Accepted(session)),
            Response::Overloaded {
                scope,
                in_flight,
                limit,
            } => Ok(Admission::Rejected(Overload {
                scope,
                in_flight,
                limit,
            })),
            other => Err(unexpected("Submitted or Overloaded", other)),
        }
    }

    /// Non-blocking status check.
    pub fn poll(&mut self, session: u32) -> Result<SessionState, ClientError> {
        match self.call(&Request::Poll { session })? {
            Response::Status { state, .. } => Ok(state),
            other => Err(unexpected("Status", other)),
        }
    }

    /// Blocks until the session completes, consuming the server's
    /// progress stream. Returns the result and the number of progress
    /// frames observed on the way.
    pub fn wait(&mut self, session: u32) -> Result<(DiscoveryResult, u64), ClientError> {
        self.send(&Request::Stream { session })?;
        let mut progress_frames = 0u64;
        loop {
            match self.recv()? {
                Response::Progress { .. } => progress_frames += 1,
                Response::Status { state, .. } => match state {
                    SessionState::Done(result) => return Ok((result, progress_frames)),
                    SessionState::Lost => return Err(ClientError::SessionLost { session }),
                    SessionState::Unknown => return Err(ClientError::SessionUnknown { session }),
                    SessionState::Pending => {
                        return Err(ClientError::Unexpected {
                            expected: "a terminal Status",
                            got: "Status(Pending)".to_string(),
                        })
                    }
                },
                other => return Err(unexpected("Progress or Status", other)),
            }
        }
    }

    /// Fetches the server-wide telemetry snapshot.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::StatsOk(stats) => Ok(stats),
            other => Err(unexpected("StatsOk", other)),
        }
    }

    /// Fetches the unified telemetry snapshot: every registered counter,
    /// gauge and latency histogram across the server's tiers, taken
    /// consistently under the registry lock.
    pub fn metrics(&mut self) -> Result<aid_obs::MetricsSnapshot, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsReply(snapshot) => Ok(snapshot),
            other => Err(unexpected("MetricsReply", other)),
        }
    }

    /// Cancels a session; returns whether the server knew the id.
    pub fn cancel(&mut self, session: u32) -> Result<bool, ClientError> {
        match self.call(&Request::Cancel { session })? {
            Response::Cancelled { existed, .. } => Ok(existed),
            other => Err(unexpected("Cancelled", other)),
        }
    }

    /// Opens a standing query. Overload rejection (the per-client watch
    /// bound, or a draining server) is a typed [`Admission::Rejected`].
    pub fn subscribe(&mut self, spec: &WatchSpec) -> Result<Admission, ClientError> {
        let request = Request::Subscribe {
            name: spec.name.clone(),
            analysis: spec.analysis.clone(),
            program: spec.program.clone(),
            strategy: spec.strategy,
            discovery_seed: spec.discovery_seed,
            runs_per_round: spec.runs_per_round,
            first_seed: spec.first_seed,
            prune_quorum: spec.prune_quorum,
            retention_traces: spec.retention_traces.unwrap_or(0),
            retention_age: spec.retention_age.unwrap_or(u64::MAX),
            max_probe_runs: spec.max_probe_runs.unwrap_or(u64::MAX),
        };
        match self.call(&request)? {
            Response::Subscribed { watch } => Ok(Admission::Accepted(watch)),
            Response::Overloaded {
                scope,
                in_flight,
                limit,
            } => Ok(Admission::Rejected(Overload {
                scope,
                in_flight,
                limit,
            })),
            other => Err(unexpected("Subscribed or Overloaded", other)),
        }
    }

    /// Appends one tail chunk to a standing query and returns what the
    /// server-side tick observed. `fin` flushes end-of-stream decoder
    /// state before the tick (further tails may still follow).
    pub fn stream_tail(
        &mut self,
        watch: u32,
        bytes: &[u8],
        fin: bool,
    ) -> Result<TailReport, ClientError> {
        match self.call(&Request::StreamTail {
            watch,
            bytes: bytes.to_vec(),
            fin,
        })? {
            Response::WatchEvents { traces, events, .. } => Ok(TailReport { traces, events }),
            other => Err(unexpected("WatchEvents", other)),
        }
    }

    /// Closes a standing query; returns whether the server knew the id.
    pub fn unsubscribe(&mut self, watch: u32) -> Result<bool, ClientError> {
        match self.call(&Request::Unsubscribe { watch })? {
            Response::Unsubscribed { existed, .. } => Ok(existed),
            other => Err(unexpected("Unsubscribed", other)),
        }
    }

    /// Ends the conversation cleanly and consumes the client.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Goodbye)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("Bye", other)),
        }
    }
}

fn unexpected(expected: &'static str, got: Response) -> ClientError {
    // Strip the payload: a Done status would otherwise drag a whole
    // discovery log into the error message.
    let got = match got {
        Response::HelloOk { .. } => "HelloOk".to_string(),
        Response::UploadAck { .. } => "UploadAck".to_string(),
        Response::Submitted { .. } => "Submitted".to_string(),
        Response::Overloaded { .. } => "Overloaded".to_string(),
        Response::Status { .. } => "Status".to_string(),
        Response::Progress { .. } => "Progress".to_string(),
        Response::StatsOk(_) => "StatsOk".to_string(),
        Response::Cancelled { .. } => "Cancelled".to_string(),
        Response::Error { .. } => "Error".to_string(),
        Response::Bye => "Bye".to_string(),
        Response::Subscribed { .. } => "Subscribed".to_string(),
        Response::WatchEvents { .. } => "WatchEvents".to_string(),
        Response::Unsubscribed { .. } => "Unsubscribed".to_string(),
        Response::MetricsReply(_) => "MetricsReply".to_string(),
    };
    ClientError::Unexpected { expected, got }
}
