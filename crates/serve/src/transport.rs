//! Connection transports: an in-process duplex pipe for deterministic
//! tests and a loopback/LAN TCP listener for real clients.
//!
//! Both sides of every transport are plain blocking [`io::Read`] +
//! [`io::Write`] byte streams, so the frame layer ([`crate::wire`]) and
//! everything above it is transport-agnostic. The server accepts through
//! the [`Listener`] trait, whose `accept_timeout` lets the acceptor thread
//! poll its shutdown flag without busy-spinning or blocking forever.

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Read timeout installed on every *accepted* connection, so server
/// handler threads wake periodically to poll the drain flag instead of
/// blocking in a read forever when a client goes idle or silent.
/// (Client-side connections set no timeout: a client legitimately blocks
/// for as long as a streamed session takes.) This is the *floor*: an idle
/// connection's timeout backs off exponentially up to
/// [`MAX_IDLE_READ_TIMEOUT`] and snaps back on traffic, so a thousand
/// idle connections cost ~1 wakeup/s each instead of 10.
pub const ACCEPTED_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Ceiling of the idle read-timeout backoff. Also the worst-case extra
/// latency before an idle handler notices the drain flag — shutdown stays
/// prompt at one second.
pub const MAX_IDLE_READ_TIMEOUT: Duration = Duration::from_millis(1000);

/// Per-connection read-deadline control, required of every accepted
/// connection so the server can back its idle poll off exponentially.
pub trait Deadline {
    /// Bounds how long a read blocks; `None` blocks indefinitely.
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Deadline for DuplexStream {
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout);
        Ok(())
    }
}

impl Deadline for std::net::TcpStream {
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

/// A source of inbound connections the server can accept from.
pub trait Listener: Send + 'static {
    /// The byte-stream type a successful accept yields.
    type Conn: io::Read + io::Write + Deadline + Send + 'static;

    /// Waits up to `timeout` for the next connection. `Ok(None)` means the
    /// timeout elapsed (poll your shutdown flag and call again); `Err`
    /// means the listener itself is dead and the accept loop should end.
    fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<Self::Conn>>;

    /// Registers the listener with a reactor's [`ReadySignal`] and reports
    /// how inbound connections announce themselves. The default keeps
    /// third-party listeners working: `Poll` tells the reactor to call
    /// [`Listener::accept_timeout`] with a zero timeout on every tick.
    fn register(&self, _signal: &Arc<ReadySignal>, _token: usize) -> Readiness {
        Readiness::Poll
    }

    /// Human-readable endpoint label, for logs and stats.
    fn label(&self) -> String;
}

// ---------------------------------------------------------------------------
// Readiness signaling.

/// A shared wakeup queue: the reactor's single blocking point for every
/// event source that is not an OS file descriptor.
///
/// Producers (duplex-pipe writes and closes, in-proc connects, handler
/// completions) call [`ReadySignal::notify`] with the token the reactor
/// assigned them; the reactor drains the deduplicated token set either
/// nonblockingly (when it also has fds to `poll(2)`) or by parking on the
/// condvar until something fires (the fully hermetic in-proc case —
/// zero polling, zero spurious wakeups).
pub struct ReadySignal {
    tokens: Mutex<Vec<usize>>,
    cv: Condvar,
}

impl ReadySignal {
    /// A fresh signal with no pending tokens.
    pub fn new() -> Arc<ReadySignal> {
        Arc::new(ReadySignal {
            tokens: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        })
    }

    /// Marks `token` ready and wakes the reactor. Idempotent while
    /// pending: a burst of writes to one connection costs one wakeup.
    pub fn notify(&self, token: usize) {
        let mut tokens = self.tokens.lock().unwrap();
        if !tokens.contains(&token) {
            tokens.push(token);
        }
        drop(tokens);
        self.cv.notify_all();
    }

    /// Takes every pending token without blocking.
    pub fn drain(&self) -> Vec<usize> {
        std::mem::take(&mut *self.tokens.lock().unwrap())
    }

    /// Takes every pending token, parking up to `timeout` for the first
    /// one. An empty result means the timeout elapsed.
    pub fn drain_timeout(&self, timeout: Duration) -> Vec<usize> {
        let mut tokens = self.tokens.lock().unwrap();
        if tokens.is_empty() {
            let (guard, _timed_out) = self.cv.wait_timeout(tokens, timeout).unwrap();
            tokens = guard;
        }
        std::mem::take(&mut *tokens)
    }
}

/// How an event source announces readiness to the reactor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Readiness {
    /// An OS file descriptor the reactor includes in its `poll(2)` set.
    #[cfg(unix)]
    Fd(std::os::unix::io::RawFd),
    /// The source pushes its token into the registered [`ReadySignal`]
    /// whenever bytes arrive or the peer hangs up — no fd, no polling.
    Wake,
    /// No notification mechanism: the reactor must speculatively try the
    /// source every tick (fallback for foreign transports).
    Poll,
}

/// A connection the reactor can drive without a dedicated thread: it can
/// be switched to nonblocking I/O and it can report (or wire up) a
/// readiness source.
///
/// The blocking `io::Read`/`io::Write` impls stay untouched — the
/// thread-per-request client side and any code outside the reactor keep
/// using the same streams in blocking mode.
pub trait EventConn: io::Read + io::Write + Deadline + Send + 'static {
    /// Switches the connection to nonblocking mode: reads and writes that
    /// would park a thread fail with `ErrorKind::WouldBlock` instead.
    fn set_event_mode(&mut self) -> io::Result<()>;

    /// Registers readiness delivery for this connection under `token` and
    /// reports which mechanism the reactor should watch. Implementations
    /// backed by [`ReadySignal`] must handle the registration race: bytes
    /// that arrived (or a hangup that happened) *before* registration
    /// still produce an immediate notify.
    fn register(&mut self, signal: &Arc<ReadySignal>, token: usize) -> io::Result<Readiness>;
}

// ---------------------------------------------------------------------------
// In-process duplex transport.

/// One direction of a duplex pipe: a byte queue with a closed flag, plus
/// an optional reactor waker fired on every state change a reader could
/// care about (bytes arriving, peer hanging up).
#[derive(Default)]
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    waker: Mutex<Option<(Arc<ReadySignal>, usize)>>,
}

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.readable.notify_all();
        self.wake();
    }

    /// Fires the registered reactor waker, if any. Called with no pipe
    /// lock held, so the signal's own lock never nests inside ours.
    fn wake(&self) {
        if let Some((signal, token)) = &*self.waker.lock().unwrap() {
            signal.notify(*token);
        }
    }
}

/// One endpoint of an in-process duplex byte stream, created in pairs by
/// [`duplex`]. Reads block until the peer writes or hangs up (or until
/// the configured read timeout, mirroring `TcpStream::set_read_timeout`);
/// dropping an endpoint closes both directions (the peer sees EOF on
/// read and `BrokenPipe` on write), exactly like a socket.
pub struct DuplexStream {
    read: Arc<Pipe>,
    write: Arc<Pipe>,
    read_timeout: Option<Duration>,
    nonblocking: bool,
}

/// A connected pair of in-process byte streams.
pub fn duplex() -> (DuplexStream, DuplexStream) {
    let a = Arc::new(Pipe::default());
    let b = Arc::new(Pipe::default());
    (
        DuplexStream {
            read: Arc::clone(&a),
            write: Arc::clone(&b),
            read_timeout: None,
            nonblocking: false,
        },
        DuplexStream {
            read: b,
            write: a,
            read_timeout: None,
            nonblocking: false,
        },
    )
}

impl DuplexStream {
    /// Bounds how long a read blocks waiting for the peer; `None` (the
    /// default) blocks indefinitely. A timed-out read fails with
    /// `ErrorKind::TimedOut` and consumes nothing.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }
}

impl io::Read for DuplexStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.read.state.lock().unwrap();
        while st.buf.is_empty() {
            if st.closed {
                return Ok(0); // EOF: peer hung up and the queue is drained.
            }
            if self.nonblocking {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "duplex has no bytes buffered",
                ));
            }
            match self.read_timeout {
                None => st = self.read.readable.wait(st).unwrap(),
                Some(timeout) => {
                    let (guard, result) = self.read.readable.wait_timeout(st, timeout).unwrap();
                    st = guard;
                    if result.timed_out() && st.buf.is_empty() && !st.closed {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "duplex read timed out",
                        ));
                    }
                }
            }
        }
        let n = buf.len().min(st.buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = st.buf.pop_front().expect("n bounded by queue length");
        }
        Ok(n)
    }
}

impl io::Write for DuplexStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.write.state.lock().unwrap();
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "duplex peer hung up",
            ));
        }
        st.buf.extend(buf);
        drop(st);
        self.write.readable.notify_all();
        self.write.wake();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        // Close both directions: the peer's reads see EOF once drained,
        // and its writes fail fast instead of filling a dead queue.
        self.read.close();
        self.write.close();
    }
}

impl EventConn for DuplexStream {
    fn set_event_mode(&mut self) -> io::Result<()> {
        self.nonblocking = true;
        Ok(())
    }

    fn register(&mut self, signal: &Arc<ReadySignal>, token: usize) -> io::Result<Readiness> {
        *self.read.waker.lock().unwrap() = Some((Arc::clone(signal), token));
        // Registration race: bytes the peer wrote (or a hangup that
        // landed) before the waker existed fired into the void — replay
        // them as an immediate notify so the reactor's first tick sees
        // this connection as ready.
        let st = self.read.state.lock().unwrap();
        if !st.buf.is_empty() || st.closed {
            drop(st);
            signal.notify(token);
        }
        Ok(Readiness::Wake)
    }
}

impl EventConn for TcpStream {
    fn set_event_mode(&mut self) -> io::Result<()> {
        self.set_nonblocking(true)
    }

    #[cfg(unix)]
    fn register(&mut self, _signal: &Arc<ReadySignal>, _token: usize) -> io::Result<Readiness> {
        Ok(Readiness::Fd(std::os::unix::io::AsRawFd::as_raw_fd(self)))
    }

    #[cfg(not(unix))]
    fn register(&mut self, _signal: &Arc<ReadySignal>, _token: usize) -> io::Result<Readiness> {
        // No portable fd story off unix: the reactor degrades to trying a
        // nonblocking read every tick, which is correct, just warmer.
        Ok(Readiness::Poll)
    }
}

/// The accepting end of the in-process transport.
pub struct InProcListener {
    rx: Receiver<DuplexStream>,
    waker: Arc<Mutex<Option<(Arc<ReadySignal>, usize)>>>,
}

/// The connecting end of the in-process transport; cloneable, so many
/// client threads can dial the same listener.
#[derive(Clone)]
pub struct InProcConnector {
    tx: Sender<DuplexStream>,
    waker: Arc<Mutex<Option<(Arc<ReadySignal>, usize)>>>,
}

/// An in-process listener/connector pair.
pub fn in_proc() -> (InProcListener, InProcConnector) {
    let (tx, rx) = channel::unbounded();
    let waker = Arc::new(Mutex::new(None));
    (
        InProcListener {
            rx,
            waker: Arc::clone(&waker),
        },
        InProcConnector { tx, waker },
    )
}

impl InProcConnector {
    /// Dials the listener, returning the client end of a fresh duplex
    /// stream. Fails with `ConnectionRefused` once the listener is gone.
    pub fn connect(&self) -> io::Result<DuplexStream> {
        let (client, server) = duplex();
        self.tx.send(server).map_err(|_| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "in-process listener is gone",
            )
        })?;
        if let Some((signal, token)) = &*self.waker.lock().unwrap() {
            signal.notify(*token);
        }
        Ok(client)
    }
}

impl Listener for InProcListener {
    type Conn = DuplexStream;

    fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<DuplexStream>> {
        match self.rx.recv_timeout(timeout) {
            Ok(mut conn) => {
                conn.set_read_timeout(Some(ACCEPTED_READ_TIMEOUT));
                Ok(Some(conn))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "every in-process connector was dropped",
            )),
        }
    }

    fn register(&self, signal: &Arc<ReadySignal>, token: usize) -> Readiness {
        *self.waker.lock().unwrap() = Some((Arc::clone(signal), token));
        // Connections queued before registration would otherwise wait for
        // an unrelated wakeup; replay them.
        if !self.rx.is_empty() {
            signal.notify(token);
        }
        Readiness::Wake
    }

    fn label(&self) -> String {
        "in-proc".to_string()
    }
}

// ---------------------------------------------------------------------------
// TCP transport.

/// A TCP listener adapter (thread-per-connection, blocking sockets,
/// `TCP_NODELAY` — the protocol is request/response with small frames).
pub struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpTransport {
    /// Binds to `addr` (use port 0 for an ephemeral port) and prepares the
    /// listener for timed accepts.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking at the listener only: accepted streams are switched
        // back to blocking before use.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(TcpTransport { listener, addr })
    }

    /// The bound address (the actual port, when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Listener for TcpTransport {
    type Conn = TcpStream;

    fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<TcpStream>> {
        // Poll the nonblocking listener in small sleeps up to `timeout` —
        // std has no native timed accept, and a sub-millisecond poll keeps
        // accept latency negligible next to a discovery session.
        let slice = Duration::from_micros(500);
        let mut waited = Duration::ZERO;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(ACCEPTED_READ_TIMEOUT))?;
                    return Ok(Some(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if waited >= timeout {
                        return Ok(None);
                    }
                    std::thread::sleep(slice);
                    waited += slice;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    #[cfg(unix)]
    fn register(&self, _signal: &Arc<ReadySignal>, _token: usize) -> Readiness {
        Readiness::Fd(std::os::unix::io::AsRawFd::as_raw_fd(&self.listener))
    }

    fn label(&self) -> String {
        format!("tcp://{}", self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn duplex_carries_bytes_both_ways_and_eofs_on_drop() {
        let (mut a, mut b) = duplex();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");

        drop(b);
        assert_eq!(a.read(&mut buf).unwrap(), 0, "EOF after peer drop");
        assert!(a.write_all(b"x").is_err(), "write to dead peer fails");
    }

    #[test]
    fn duplex_read_blocks_until_write() {
        let (mut a, mut b) = duplex();
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 3];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(Duration::from_millis(5));
        a.write_all(b"abc").unwrap();
        assert_eq!(&reader.join().unwrap(), b"abc");
    }

    #[test]
    fn in_proc_listener_times_out_then_accepts() {
        let (listener, connector) = in_proc();
        assert!(listener
            .accept_timeout(Duration::from_millis(1))
            .unwrap()
            .is_none());
        let mut client = connector.connect().unwrap();
        let mut server = listener
            .accept_timeout(Duration::from_millis(100))
            .unwrap()
            .expect("pending connection");
        client.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn duplex_event_mode_returns_wouldblock_and_wakes_on_traffic() {
        let (mut client, mut server) = duplex();
        let signal = ReadySignal::new();
        server.set_event_mode().unwrap();
        assert_eq!(server.register(&signal, 7).unwrap(), Readiness::Wake);

        // Nothing buffered: a nonblocking read refuses instead of parking.
        let mut buf = [0u8; 8];
        assert_eq!(
            server.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert!(signal.drain().is_empty(), "no traffic, no wakeup");

        // A peer write fires exactly one wakeup, however many chunks land.
        client.write_all(b"ab").unwrap();
        client.write_all(b"cd").unwrap();
        assert_eq!(signal.drain_timeout(Duration::from_secs(5)), vec![7]);
        assert_eq!(server.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"abcd");

        // Hangup also wakes, and reads see EOF, not WouldBlock.
        drop(client);
        assert_eq!(signal.drain_timeout(Duration::from_secs(5)), vec![7]);
        assert_eq!(server.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn duplex_registration_replays_missed_events() {
        // Bytes written before the waker existed must still notify.
        let (mut client, mut server) = duplex();
        client.write_all(b"early").unwrap();
        let signal = ReadySignal::new();
        server.set_event_mode().unwrap();
        server.register(&signal, 3).unwrap();
        assert_eq!(signal.drain(), vec![3], "pre-registration bytes replay");

        // Same for a hangup that landed before registration.
        let (client2, mut server2) = duplex();
        drop(client2);
        server2.set_event_mode().unwrap();
        server2.register(&signal, 4).unwrap();
        assert_eq!(signal.drain(), vec![4], "pre-registration hangup replays");
    }

    #[test]
    fn in_proc_listener_registration_wakes_on_connect() {
        let (listener, connector) = in_proc();
        let signal = ReadySignal::new();
        assert_eq!(listener.register(&signal, 0), Readiness::Wake);
        assert!(signal.drain().is_empty());

        let _client = connector.connect().unwrap();
        assert_eq!(signal.drain_timeout(Duration::from_secs(5)), vec![0]);
        assert!(listener.accept_timeout(Duration::ZERO).unwrap().is_some());

        // Backlogged connections replay on (re-)registration too.
        let (listener2, connector2) = in_proc();
        let _early = connector2.connect().unwrap();
        listener2.register(&signal, 9);
        assert_eq!(signal.drain(), vec![9]);
    }

    #[test]
    fn ready_signal_dedups_pending_tokens() {
        let signal = ReadySignal::new();
        signal.notify(5);
        signal.notify(5);
        signal.notify(2);
        assert_eq!(signal.drain_timeout(Duration::from_secs(1)), vec![5, 2]);
        assert!(signal.drain_timeout(Duration::from_millis(1)).is_empty());
    }

    #[test]
    fn tcp_transport_accepts_loopback() {
        let transport = TcpTransport::bind("127.0.0.1:0").unwrap();
        let addr = transport.local_addr();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"hello").unwrap();
        });
        let mut conn = transport
            .accept_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("client connected");
        let mut buf = [0u8; 5];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        client.join().unwrap();
    }
}
