//! Connection transports: an in-process duplex pipe for deterministic
//! tests and a loopback/LAN TCP listener for real clients.
//!
//! Both sides of every transport are plain blocking [`io::Read`] +
//! [`io::Write`] byte streams, so the frame layer ([`crate::wire`]) and
//! everything above it is transport-agnostic. The server accepts through
//! the [`Listener`] trait, whose `accept_timeout` lets the acceptor thread
//! poll its shutdown flag without busy-spinning or blocking forever.

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Read timeout installed on every *accepted* connection, so server
/// handler threads wake periodically to poll the drain flag instead of
/// blocking in a read forever when a client goes idle or silent.
/// (Client-side connections set no timeout: a client legitimately blocks
/// for as long as a streamed session takes.) This is the *floor*: an idle
/// connection's timeout backs off exponentially up to
/// [`MAX_IDLE_READ_TIMEOUT`] and snaps back on traffic, so a thousand
/// idle connections cost ~1 wakeup/s each instead of 10.
pub const ACCEPTED_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Ceiling of the idle read-timeout backoff. Also the worst-case extra
/// latency before an idle handler notices the drain flag — shutdown stays
/// prompt at one second.
pub const MAX_IDLE_READ_TIMEOUT: Duration = Duration::from_millis(1000);

/// Per-connection read-deadline control, required of every accepted
/// connection so the server can back its idle poll off exponentially.
pub trait Deadline {
    /// Bounds how long a read blocks; `None` blocks indefinitely.
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Deadline for DuplexStream {
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout);
        Ok(())
    }
}

impl Deadline for std::net::TcpStream {
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

/// A source of inbound connections the server can accept from.
pub trait Listener: Send + 'static {
    /// The byte-stream type a successful accept yields.
    type Conn: io::Read + io::Write + Deadline + Send + 'static;

    /// Waits up to `timeout` for the next connection. `Ok(None)` means the
    /// timeout elapsed (poll your shutdown flag and call again); `Err`
    /// means the listener itself is dead and the accept loop should end.
    fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<Self::Conn>>;

    /// Human-readable endpoint label, for logs and stats.
    fn label(&self) -> String;
}

// ---------------------------------------------------------------------------
// In-process duplex transport.

/// One direction of a duplex pipe: a byte queue with a closed flag.
#[derive(Default)]
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
}

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.readable.notify_all();
    }
}

/// One endpoint of an in-process duplex byte stream, created in pairs by
/// [`duplex`]. Reads block until the peer writes or hangs up (or until
/// the configured read timeout, mirroring `TcpStream::set_read_timeout`);
/// dropping an endpoint closes both directions (the peer sees EOF on
/// read and `BrokenPipe` on write), exactly like a socket.
pub struct DuplexStream {
    read: Arc<Pipe>,
    write: Arc<Pipe>,
    read_timeout: Option<Duration>,
}

/// A connected pair of in-process byte streams.
pub fn duplex() -> (DuplexStream, DuplexStream) {
    let a = Arc::new(Pipe::default());
    let b = Arc::new(Pipe::default());
    (
        DuplexStream {
            read: Arc::clone(&a),
            write: Arc::clone(&b),
            read_timeout: None,
        },
        DuplexStream {
            read: b,
            write: a,
            read_timeout: None,
        },
    )
}

impl DuplexStream {
    /// Bounds how long a read blocks waiting for the peer; `None` (the
    /// default) blocks indefinitely. A timed-out read fails with
    /// `ErrorKind::TimedOut` and consumes nothing.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }
}

impl io::Read for DuplexStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.read.state.lock().unwrap();
        while st.buf.is_empty() {
            if st.closed {
                return Ok(0); // EOF: peer hung up and the queue is drained.
            }
            match self.read_timeout {
                None => st = self.read.readable.wait(st).unwrap(),
                Some(timeout) => {
                    let (guard, result) = self.read.readable.wait_timeout(st, timeout).unwrap();
                    st = guard;
                    if result.timed_out() && st.buf.is_empty() && !st.closed {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "duplex read timed out",
                        ));
                    }
                }
            }
        }
        let n = buf.len().min(st.buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = st.buf.pop_front().expect("n bounded by queue length");
        }
        Ok(n)
    }
}

impl io::Write for DuplexStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.write.state.lock().unwrap();
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "duplex peer hung up",
            ));
        }
        st.buf.extend(buf);
        drop(st);
        self.write.readable.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        // Close both directions: the peer's reads see EOF once drained,
        // and its writes fail fast instead of filling a dead queue.
        self.read.close();
        self.write.close();
    }
}

/// The accepting end of the in-process transport.
pub struct InProcListener {
    rx: Receiver<DuplexStream>,
}

/// The connecting end of the in-process transport; cloneable, so many
/// client threads can dial the same listener.
#[derive(Clone)]
pub struct InProcConnector {
    tx: Sender<DuplexStream>,
}

/// An in-process listener/connector pair.
pub fn in_proc() -> (InProcListener, InProcConnector) {
    let (tx, rx) = channel::unbounded();
    (InProcListener { rx }, InProcConnector { tx })
}

impl InProcConnector {
    /// Dials the listener, returning the client end of a fresh duplex
    /// stream. Fails with `ConnectionRefused` once the listener is gone.
    pub fn connect(&self) -> io::Result<DuplexStream> {
        let (client, server) = duplex();
        self.tx.send(server).map_err(|_| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "in-process listener is gone",
            )
        })?;
        Ok(client)
    }
}

impl Listener for InProcListener {
    type Conn = DuplexStream;

    fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<DuplexStream>> {
        match self.rx.recv_timeout(timeout) {
            Ok(mut conn) => {
                conn.set_read_timeout(Some(ACCEPTED_READ_TIMEOUT));
                Ok(Some(conn))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "every in-process connector was dropped",
            )),
        }
    }

    fn label(&self) -> String {
        "in-proc".to_string()
    }
}

// ---------------------------------------------------------------------------
// TCP transport.

/// A TCP listener adapter (thread-per-connection, blocking sockets,
/// `TCP_NODELAY` — the protocol is request/response with small frames).
pub struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpTransport {
    /// Binds to `addr` (use port 0 for an ephemeral port) and prepares the
    /// listener for timed accepts.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking at the listener only: accepted streams are switched
        // back to blocking before use.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(TcpTransport { listener, addr })
    }

    /// The bound address (the actual port, when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Listener for TcpTransport {
    type Conn = TcpStream;

    fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<TcpStream>> {
        // Poll the nonblocking listener in small sleeps up to `timeout` —
        // std has no native timed accept, and a sub-millisecond poll keeps
        // accept latency negligible next to a discovery session.
        let slice = Duration::from_micros(500);
        let mut waited = Duration::ZERO;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(ACCEPTED_READ_TIMEOUT))?;
                    return Ok(Some(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if waited >= timeout {
                        return Ok(None);
                    }
                    std::thread::sleep(slice);
                    waited += slice;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn label(&self) -> String {
        format!("tcp://{}", self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn duplex_carries_bytes_both_ways_and_eofs_on_drop() {
        let (mut a, mut b) = duplex();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");

        drop(b);
        assert_eq!(a.read(&mut buf).unwrap(), 0, "EOF after peer drop");
        assert!(a.write_all(b"x").is_err(), "write to dead peer fails");
    }

    #[test]
    fn duplex_read_blocks_until_write() {
        let (mut a, mut b) = duplex();
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 3];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(Duration::from_millis(5));
        a.write_all(b"abc").unwrap();
        assert_eq!(&reader.join().unwrap(), b"abc");
    }

    #[test]
    fn in_proc_listener_times_out_then_accepts() {
        let (listener, connector) = in_proc();
        assert!(listener
            .accept_timeout(Duration::from_millis(1))
            .unwrap()
            .is_none());
        let mut client = connector.connect().unwrap();
        let mut server = listener
            .accept_timeout(Duration::from_millis(100))
            .unwrap()
            .expect("pending connection");
        client.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn tcp_transport_accepts_loopback() {
        let transport = TcpTransport::bind("127.0.0.1:0").unwrap();
        let addr = transport.local_addr();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"hello").unwrap();
        });
        let mut conn = transport
            .accept_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("client connected");
        let mut buf = [0u8; 5];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        client.join().unwrap();
    }
}
