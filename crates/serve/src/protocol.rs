//! The versioned request/response frames of the debugging service.
//!
//! Every frame is length-prefixed and carries the protocol version in its
//! header (see [`crate::wire`]). Payload encodings are hand-rolled
//! little-endian field sequences behind the workspace's offline `serde`
//! marker derives — the shim provides no serialization machinery, so the
//! byte layout lives here, next to the types it serializes.
//!
//! Decoding is total: any byte sequence produces either a value or a typed
//! [`WireError`], never a panic — `tests/frame_roundtrip.rs` proptests
//! round-trips, truncations, and corruptions of every frame kind.

use crate::wire::{self, put_bytes, put_string, Reader, WireError};
use aid_core::{DiscoverOptions, DiscoveryResult, Phase, RoundLog, Strategy};
use aid_lab::{BugClass, ScenarioSpec};
use aid_obs::{HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot};
use aid_predicates::PredicateId;
use aid_trace::{FailureSignature, MethodId};
use aid_watch::WatchEvent;
use bytes::BufMut;
use serde::{Deserialize, Serialize};

/// Which program a discovery session executes interventions on. The
/// program itself never crosses the wire — every variant is a deterministic
/// *recipe* the server can rebuild bit-identically, which is what makes
/// cross-client intervention-cache hits possible.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProgramSpec {
    /// One of the six named case studies (`aid_cases::all_cases`).
    Case {
        /// The case's name, e.g. `"npgsql"`.
        name: String,
    },
    /// A generated lab scenario, rebuilt via [`aid_lab::build`].
    Lab(ScenarioSpec),
    /// A Figure-8 synthetic application served by the exact oracle
    /// (`aid_synth::generate` under default parameters). Needs no uploaded
    /// traces: the oracle knows the ground truth.
    Synth {
        /// The application seed.
        app_seed: u64,
    },
}

/// Which extraction configuration an upload is analyzed under. Like
/// [`ProgramSpec`] this is a *recipe*: the six case studies and the lab
/// templates carry their own purity markings and safety knobs, and a
/// server-side analysis is only comparable to an in-process one if both
/// ran under the same configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AnalysisSpec {
    /// The server's configured default (`ServeConfig.store.extraction`).
    Default,
    /// The named case study's extraction configuration.
    Case {
        /// The case's name, e.g. `"npgsql"`.
        name: String,
    },
    /// The generated lab scenario's extraction configuration.
    Lab(ScenarioSpec),
}

fn put_scenario_spec(buf: &mut Vec<u8>, s: &ScenarioSpec) {
    buf.put_u64_le(s.seed);
    buf.put_u32_le(s.attempt);
    let class = BugClass::ALL
        .iter()
        .position(|c| *c == s.bug_class)
        .expect("bug class is one of ALL") as u8;
    buf.put_u8(class);
    buf.put_u32_le(s.mirrors as u32);
    buf.put_u32_le(s.chain as u32);
    buf.put_u32_le(s.monitors as u32);
    buf.put_u32_le(s.noise_threads as u32);
}

fn get_scenario_spec(r: &mut Reader<'_>) -> Result<ScenarioSpec, WireError> {
    let seed = r.u64()?;
    let attempt = r.u32()?;
    let class = r.u8()?;
    let bug_class = *BugClass::ALL
        .get(class as usize)
        .ok_or(WireError::UnknownTag {
            what: "bug class",
            tag: class,
        })?;
    Ok(ScenarioSpec {
        seed,
        attempt,
        bug_class,
        mirrors: r.u32()? as usize,
        chain: r.u32()? as usize,
        monitors: r.u32()? as usize,
        noise_threads: r.u32()? as usize,
    })
}

fn put_analysis_spec(buf: &mut Vec<u8>, spec: &AnalysisSpec) {
    match spec {
        AnalysisSpec::Default => buf.put_u8(0),
        AnalysisSpec::Case { name } => {
            buf.put_u8(1);
            put_string(buf, name);
        }
        AnalysisSpec::Lab(s) => {
            buf.put_u8(2);
            put_scenario_spec(buf, s);
        }
    }
}

fn get_analysis_spec(r: &mut Reader<'_>) -> Result<AnalysisSpec, WireError> {
    match r.u8()? {
        0 => Ok(AnalysisSpec::Default),
        1 => Ok(AnalysisSpec::Case { name: r.string()? }),
        2 => Ok(AnalysisSpec::Lab(get_scenario_spec(r)?)),
        tag => Err(WireError::UnknownTag {
            what: "analysis spec",
            tag,
        }),
    }
}

fn put_program_spec(buf: &mut Vec<u8>, spec: &ProgramSpec) {
    match spec {
        ProgramSpec::Case { name } => {
            buf.put_u8(0);
            put_string(buf, name);
        }
        ProgramSpec::Lab(s) => {
            buf.put_u8(1);
            put_scenario_spec(buf, s);
        }
        ProgramSpec::Synth { app_seed } => {
            buf.put_u8(2);
            buf.put_u64_le(*app_seed);
        }
    }
}

fn get_program_spec(r: &mut Reader<'_>) -> Result<ProgramSpec, WireError> {
    match r.u8()? {
        0 => Ok(ProgramSpec::Case { name: r.string()? }),
        1 => Ok(ProgramSpec::Lab(get_scenario_spec(r)?)),
        2 => Ok(ProgramSpec::Synth { app_seed: r.u64()? }),
        tag => Err(WireError::UnknownTag {
            what: "program spec",
            tag,
        }),
    }
}

fn put_strategy(buf: &mut Vec<u8>, s: Strategy) {
    match s {
        Strategy::Aid => buf.put_u8(0),
        Strategy::AidP => buf.put_u8(1),
        Strategy::AidPB => buf.put_u8(2),
        Strategy::Tagt => buf.put_u8(3),
        Strategy::Custom { branch, prune } => {
            buf.put_u8(4);
            buf.put_u8(branch as u8);
            buf.put_u8(prune as u8);
        }
    }
}

fn get_strategy(r: &mut Reader<'_>) -> Result<Strategy, WireError> {
    match r.u8()? {
        0 => Ok(Strategy::Aid),
        1 => Ok(Strategy::AidP),
        2 => Ok(Strategy::AidPB),
        3 => Ok(Strategy::Tagt),
        4 => Ok(Strategy::Custom {
            branch: r.bool("custom branch flag")?,
            prune: r.bool("custom prune flag")?,
        }),
        tag => Err(WireError::UnknownTag {
            what: "strategy",
            tag,
        }),
    }
}

fn put_predicates(buf: &mut Vec<u8>, ids: &[PredicateId]) {
    buf.put_u32_le(ids.len() as u32);
    for id in ids {
        buf.put_u32_le(id.raw());
    }
}

fn get_predicates(r: &mut Reader<'_>) -> Result<Vec<PredicateId>, WireError> {
    let n = r.u32()? as usize;
    // Bound the allocation by what the payload can actually hold (4 bytes
    // per id), so a corrupted length cannot balloon memory.
    if r.remaining() / 4 < n {
        return Err(WireError::Truncated {
            needed: n * 4,
            available: r.remaining(),
        });
    }
    (0..n)
        .map(|_| Ok(PredicateId::from_raw(r.u32()?)))
        .collect()
}

fn put_result(buf: &mut Vec<u8>, result: &DiscoveryResult) {
    put_predicates(buf, &result.causal);
    put_predicates(buf, &result.spurious);
    buf.put_u32_le(result.failure.raw());
    buf.put_u64_le(result.rounds as u64);
    buf.put_u32_le(result.log.len() as u32);
    for round in &result.log {
        buf.put_u8(match round.phase {
            Phase::Branch => 0,
            Phase::Giwp => 1,
            Phase::Tagt => 2,
        });
        put_predicates(buf, &round.intervened);
        buf.put_u8(round.stopped as u8);
        put_predicates(buf, &round.confirmed);
        put_predicates(buf, &round.pruned);
    }
}

fn get_result(r: &mut Reader<'_>) -> Result<DiscoveryResult, WireError> {
    let causal = get_predicates(r)?;
    let spurious = get_predicates(r)?;
    let failure = PredicateId::from_raw(r.u32()?);
    let rounds = r.u64()? as usize;
    let n = r.u32()? as usize;
    // A round encodes to at least 14 bytes (phase byte, three u32 length
    // prefixes, stopped byte); bound the allocation by what the payload
    // can actually hold so a hostile count cannot balloon memory.
    const MIN_ROUND_BYTES: usize = 14;
    if r.remaining() / MIN_ROUND_BYTES < n {
        return Err(WireError::Truncated {
            needed: n * MIN_ROUND_BYTES,
            available: r.remaining(),
        });
    }
    let mut log = Vec::with_capacity(n);
    for _ in 0..n {
        let phase = match r.u8()? {
            0 => Phase::Branch,
            1 => Phase::Giwp,
            2 => Phase::Tagt,
            tag => return Err(WireError::UnknownTag { what: "phase", tag }),
        };
        log.push(RoundLog {
            phase,
            intervened: get_predicates(r)?,
            stopped: r.bool("round stopped flag")?,
            confirmed: get_predicates(r)?,
            pruned: get_predicates(r)?,
        });
    }
    Ok(DiscoveryResult {
        causal,
        spurious,
        failure,
        rounds,
        log,
    })
}

fn put_watch_event(buf: &mut Vec<u8>, event: &WatchEvent) {
    match event {
        WatchEvent::Converged {
            result,
            reprobed,
            skipped,
            resubmitted,
        } => {
            buf.put_u8(0);
            put_result(buf, result);
            buf.put_u32_le(*reprobed);
            buf.put_u32_le(*skipped);
            buf.put_u8(*resubmitted as u8);
        }
        WatchEvent::RootChanged { root, result } => {
            buf.put_u8(1);
            match root {
                Some(id) => {
                    buf.put_u8(1);
                    buf.put_u32_le(id.raw());
                }
                None => buf.put_u8(0),
            }
            put_result(buf, result);
        }
        WatchEvent::NewFailureClass { signature, classes } => {
            buf.put_u8(2);
            put_string(buf, &signature.kind);
            buf.put_u32_le(signature.method.raw());
            buf.put_u32_le(*classes);
        }
        WatchEvent::BudgetExhausted { probe_runs, budget } => {
            buf.put_u8(3);
            buf.put_u64_le(*probe_runs);
            buf.put_u64_le(*budget);
        }
    }
}

fn get_watch_event(r: &mut Reader<'_>) -> Result<WatchEvent, WireError> {
    match r.u8()? {
        0 => Ok(WatchEvent::Converged {
            result: get_result(r)?,
            reprobed: r.u32()?,
            skipped: r.u32()?,
            resubmitted: r.bool("resubmitted flag")?,
        }),
        1 => Ok(WatchEvent::RootChanged {
            root: if r.bool("root presence flag")? {
                Some(PredicateId::from_raw(r.u32()?))
            } else {
                None
            },
            result: get_result(r)?,
        }),
        2 => Ok(WatchEvent::NewFailureClass {
            signature: FailureSignature {
                kind: r.string()?,
                method: MethodId::from_raw(r.u32()?),
            },
            classes: r.u32()?,
        }),
        3 => Ok(WatchEvent::BudgetExhausted {
            probe_runs: r.u64()?,
            budget: r.u64()?,
        }),
        tag => Err(WireError::UnknownTag {
            what: "watch event",
            tag,
        }),
    }
}

fn put_watch_events(buf: &mut Vec<u8>, events: &[WatchEvent]) {
    buf.put_u32_le(events.len() as u32);
    for event in events {
        put_watch_event(buf, event);
    }
}

fn get_watch_events(r: &mut Reader<'_>) -> Result<Vec<WatchEvent>, WireError> {
    let n = r.u32()? as usize;
    // Every event encodes to at least one tag byte; bound the allocation
    // by what the payload can actually hold.
    if r.remaining() < n {
        return Err(WireError::Truncated {
            needed: n,
            available: r.remaining(),
        });
    }
    (0..n).map(|_| get_watch_event(r)).collect()
}

/// A client-to-server frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Opens the conversation; the server answers with its identity.
    Hello {
        /// Client self-identification (free-form, for server logs).
        client: String,
    },
    /// Resets the connection's trace store for a fresh upload, analyzed
    /// under the given extraction configuration.
    BeginUpload {
        /// The extraction-configuration recipe for this upload.
        analysis: AnalysisSpec,
    },
    /// One chunk of a `aid_trace::codec`-encoded log stream; any framing
    /// (chunks may split lines anywhere). Fed straight into the
    /// connection's `aid_store::StreamDecoder`.
    UploadChunk {
        /// Raw log bytes.
        bytes: Vec<u8>,
    },
    /// Ends the upload: flushes decoder state (quarantining a trailing
    /// partial line) and refreshes the incremental analysis.
    FinishUpload,
    /// Submits a discovery session over the uploaded analysis.
    SubmitDiscovery {
        /// Session name, echoed in server logs and results.
        name: String,
        /// The intervention substrate (rebuilt server-side).
        program: ProgramSpec,
        /// Discovery strategy.
        strategy: Strategy,
        /// Tie-breaking seed for the discovery algorithms.
        discovery_seed: u64,
        /// Intervention runs per round (ignored for `Synth`).
        runs_per_round: u32,
        /// First intervention seed (ignored for `Synth`).
        first_seed: u64,
        /// Definition-2 prune quorum ([`DiscoverOptions`]).
        prune_quorum: u32,
    },
    /// Non-blocking status check for a submitted session.
    Poll {
        /// The session id from `Submitted`.
        session: u32,
    },
    /// Blocks server-side: streams `Progress` frames until the session
    /// reaches a terminal state, then a final `Status`.
    Stream {
        /// The session id from `Submitted`.
        session: u32,
    },
    /// Requests the server-wide telemetry snapshot.
    Stats,
    /// Abandons a session: frees its admission slot and discards the
    /// result (the engine still runs it to completion internally).
    Cancel {
        /// The session id from `Submitted`.
        session: u32,
    },
    /// Ends the conversation cleanly.
    Goodbye,
    /// Opens a standing query: a server-side watcher with its own windowed
    /// trace store, re-running discovery incrementally as tails arrive.
    /// Bounded by `max_watches_per_client` (refused with
    /// `Overloaded { scope: Client }` at the cap).
    Subscribe {
        /// Watcher name (server-side label for engine telemetry).
        name: String,
        /// The extraction-configuration recipe for the streamed corpus.
        analysis: AnalysisSpec,
        /// The intervention substrate (rebuilt server-side; `Synth` is
        /// refused — the oracle consumes no trace stream).
        program: ProgramSpec,
        /// Discovery strategy for every (re)submission.
        strategy: Strategy,
        /// Tie-breaking seed, fixed across re-runs.
        discovery_seed: u64,
        /// Intervention runs per round.
        runs_per_round: u32,
        /// First intervention seed.
        first_seed: u64,
        /// Definition-2 prune quorum.
        prune_quorum: u32,
        /// Retention bound by trace count (`0` = unbounded).
        retention_traces: u64,
        /// Retention bound by batch age in appends (`u64::MAX` =
        /// unbounded; `0` retains only the most recent append).
        retention_age: u64,
        /// Lifetime probe budget in intervention runs (`u64::MAX` =
        /// unbounded).
        max_probe_runs: u64,
    },
    /// One chunk of a watched trace tail (same streaming decoder semantics
    /// as `UploadChunk`; counted against the same per-client upload
    /// quota). The server appends, ticks the watcher, and answers with
    /// the tick's `WatchEvents`.
    StreamTail {
        /// The watch id from `Subscribed`.
        watch: u32,
        /// Raw log bytes (chunks may split lines anywhere).
        bytes: Vec<u8>,
        /// Flushes end-of-stream decoder state before ticking
        /// (quarantining a dangling partial line). Further tails may
        /// still follow.
        fin: bool,
    },
    /// Closes a standing query, freeing its admission slot.
    Unsubscribe {
        /// The watch id from `Subscribed`.
        watch: u32,
    },
    /// Requests the unified telemetry snapshot: every registered counter,
    /// gauge and latency histogram across the reactor, handler pool,
    /// engine shards, stores and watchers, taken consistently under the
    /// registry lock. `Stats` remains the fixed-layout summary; this is
    /// the full plane.
    Metrics,
}

const REQ_HELLO: u8 = 1;
const REQ_BEGIN_UPLOAD: u8 = 2;
const REQ_UPLOAD_CHUNK: u8 = 3;
const REQ_FINISH_UPLOAD: u8 = 4;
const REQ_SUBMIT: u8 = 5;
const REQ_POLL: u8 = 6;
const REQ_STREAM: u8 = 7;
const REQ_STATS: u8 = 8;
const REQ_CANCEL: u8 = 9;
const REQ_GOODBYE: u8 = 10;
const REQ_SUBSCRIBE: u8 = 11;
const REQ_STREAM_TAIL: u8 = 12;
const REQ_UNSUBSCRIBE: u8 = 13;
const REQ_METRICS: u8 = 14;

impl Request {
    /// Encodes the request as one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let kind = match self {
            Request::Hello { client } => {
                put_string(&mut p, client);
                REQ_HELLO
            }
            Request::BeginUpload { analysis } => {
                put_analysis_spec(&mut p, analysis);
                REQ_BEGIN_UPLOAD
            }
            Request::UploadChunk { bytes } => {
                put_bytes(&mut p, bytes);
                REQ_UPLOAD_CHUNK
            }
            Request::FinishUpload => REQ_FINISH_UPLOAD,
            Request::SubmitDiscovery {
                name,
                program,
                strategy,
                discovery_seed,
                runs_per_round,
                first_seed,
                prune_quorum,
            } => {
                put_string(&mut p, name);
                put_program_spec(&mut p, program);
                put_strategy(&mut p, *strategy);
                p.put_u64_le(*discovery_seed);
                p.put_u32_le(*runs_per_round);
                p.put_u64_le(*first_seed);
                p.put_u32_le(*prune_quorum);
                REQ_SUBMIT
            }
            Request::Poll { session } => {
                p.put_u32_le(*session);
                REQ_POLL
            }
            Request::Stream { session } => {
                p.put_u32_le(*session);
                REQ_STREAM
            }
            Request::Stats => REQ_STATS,
            Request::Cancel { session } => {
                p.put_u32_le(*session);
                REQ_CANCEL
            }
            Request::Goodbye => REQ_GOODBYE,
            Request::Subscribe {
                name,
                analysis,
                program,
                strategy,
                discovery_seed,
                runs_per_round,
                first_seed,
                prune_quorum,
                retention_traces,
                retention_age,
                max_probe_runs,
            } => {
                put_string(&mut p, name);
                put_analysis_spec(&mut p, analysis);
                put_program_spec(&mut p, program);
                put_strategy(&mut p, *strategy);
                p.put_u64_le(*discovery_seed);
                p.put_u32_le(*runs_per_round);
                p.put_u64_le(*first_seed);
                p.put_u32_le(*prune_quorum);
                p.put_u64_le(*retention_traces);
                p.put_u64_le(*retention_age);
                p.put_u64_le(*max_probe_runs);
                REQ_SUBSCRIBE
            }
            Request::StreamTail { watch, bytes, fin } => {
                p.put_u32_le(*watch);
                put_bytes(&mut p, bytes);
                p.put_u8(*fin as u8);
                REQ_STREAM_TAIL
            }
            Request::Unsubscribe { watch } => {
                p.put_u32_le(*watch);
                REQ_UNSUBSCRIBE
            }
            Request::Metrics => REQ_METRICS,
        };
        wire::frame(kind, &p)
    }

    /// Decodes a request from a frame's kind byte and payload.
    pub fn decode_payload(kind: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let req = match kind {
            REQ_HELLO => Request::Hello {
                client: r.string()?,
            },
            REQ_BEGIN_UPLOAD => Request::BeginUpload {
                analysis: get_analysis_spec(&mut r)?,
            },
            REQ_UPLOAD_CHUNK => Request::UploadChunk { bytes: r.bytes()? },
            REQ_FINISH_UPLOAD => Request::FinishUpload,
            REQ_SUBMIT => Request::SubmitDiscovery {
                name: r.string()?,
                program: get_program_spec(&mut r)?,
                strategy: get_strategy(&mut r)?,
                discovery_seed: r.u64()?,
                runs_per_round: r.u32()?,
                first_seed: r.u64()?,
                prune_quorum: r.u32()?,
            },
            REQ_POLL => Request::Poll { session: r.u32()? },
            REQ_STREAM => Request::Stream { session: r.u32()? },
            REQ_STATS => Request::Stats,
            REQ_CANCEL => Request::Cancel { session: r.u32()? },
            REQ_GOODBYE => Request::Goodbye,
            REQ_SUBSCRIBE => Request::Subscribe {
                name: r.string()?,
                analysis: get_analysis_spec(&mut r)?,
                program: get_program_spec(&mut r)?,
                strategy: get_strategy(&mut r)?,
                discovery_seed: r.u64()?,
                runs_per_round: r.u32()?,
                first_seed: r.u64()?,
                prune_quorum: r.u32()?,
                retention_traces: r.u64()?,
                retention_age: r.u64()?,
                max_probe_runs: r.u64()?,
            },
            REQ_STREAM_TAIL => Request::StreamTail {
                watch: r.u32()?,
                bytes: r.bytes()?,
                fin: r.bool("tail fin flag")?,
            },
            REQ_UNSUBSCRIBE => Request::Unsubscribe { watch: r.u32()? },
            REQ_METRICS => Request::Metrics,
            tag => {
                return Err(WireError::UnknownTag {
                    what: "request kind",
                    tag,
                })
            }
        };
        r.expect_empty()?;
        Ok(req)
    }

    /// Decodes one request frame from the front of `buf`, returning the
    /// request and the bytes consumed.
    pub fn decode(buf: &[u8], max_payload: usize) -> Result<(Request, usize), WireError> {
        let (kind, payload, consumed) = wire::split_frame(buf, max_payload)?;
        Ok((Request::decode_payload(kind, payload)?, consumed))
    }
}

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverloadScope {
    /// This connection already holds `max_sessions_per_client` unfetched
    /// sessions — poll or cancel one first.
    Client,
    /// The shared engine's `max_pending` bound is full — retry later.
    Engine,
    /// The server is draining for shutdown — the rejection is permanent.
    Draining,
}

impl OverloadScope {
    /// Stable display name (also used in the loadgen JSON summary).
    pub fn name(&self) -> &'static str {
        match self {
            OverloadScope::Client => "client",
            OverloadScope::Engine => "engine",
            OverloadScope::Draining => "draining",
        }
    }
}

/// A submitted session's observable state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SessionState {
    /// Still queued or running.
    Pending,
    /// Finished; the result is attached and the admission slot is freed
    /// (a session's result is delivered exactly once).
    Done(DiscoveryResult),
    /// The session died without a result (its job panicked server-side);
    /// the admission slot is freed.
    Lost,
    /// No such session on this connection (bad id, already delivered, or
    /// cancelled).
    Unknown,
}

/// Typed error codes a server can answer any request with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request frame violated the wire format.
    Malformed,
    /// `SubmitDiscovery` named a case study the server does not know.
    UnknownCase,
    /// `SubmitDiscovery` needs an uploaded analysis, but the connection's
    /// store has no failure yet (nothing uploaded, or no failing trace).
    NoAnalysis,
    /// The server failed internally while handling the request.
    Internal,
    /// The connection's upload exceeded the server's per-client byte
    /// quota; `BeginUpload` starts a fresh (empty) budget.
    UploadTooLarge,
    /// The server is at its connection cap; sent once on accept, then
    /// the connection is closed.
    TooManyConnections,
    /// `StreamTail`/`Unsubscribe` named a watch id this connection does
    /// not hold (never subscribed, or already unsubscribed).
    UnknownWatch,
    /// `Subscribe` named a program that consumes no trace stream (the
    /// synthetic oracle): there is nothing for a standing query to watch.
    Unwatchable,
    /// The server began draining mid-exchange; sent as the *terminal*
    /// frame of a `Stream` (the in-flight session keeps running engine-side
    /// and its slot stays claimable until the connection closes, but no
    /// further frames follow). Distinct from `Response::Overloaded` with
    /// `Draining` scope, which refuses a *new* submission.
    Draining,
}

fn put_error_code(buf: &mut Vec<u8>, code: ErrorCode) {
    buf.put_u8(match code {
        ErrorCode::Malformed => 0,
        ErrorCode::UnknownCase => 1,
        ErrorCode::NoAnalysis => 2,
        ErrorCode::Internal => 3,
        ErrorCode::UploadTooLarge => 4,
        ErrorCode::TooManyConnections => 5,
        ErrorCode::UnknownWatch => 6,
        ErrorCode::Unwatchable => 7,
        ErrorCode::Draining => 8,
    });
}

fn get_error_code(r: &mut Reader<'_>) -> Result<ErrorCode, WireError> {
    match r.u8()? {
        0 => Ok(ErrorCode::Malformed),
        1 => Ok(ErrorCode::UnknownCase),
        2 => Ok(ErrorCode::NoAnalysis),
        3 => Ok(ErrorCode::Internal),
        4 => Ok(ErrorCode::UploadTooLarge),
        5 => Ok(ErrorCode::TooManyConnections),
        6 => Ok(ErrorCode::UnknownWatch),
        7 => Ok(ErrorCode::Unwatchable),
        8 => Ok(ErrorCode::Draining),
        tag => Err(WireError::UnknownTag {
            what: "error code",
            tag,
        }),
    }
}

/// The server-wide telemetry snapshot: connection/frame/upload/session
/// counters plus the shared engine's execution and cache counters, folded
/// into one wire-encodable record.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections: u64,
    /// Connections refused at the connection cap.
    pub connections_refused: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Request frames read.
    pub frames_in: u64,
    /// Response frames written.
    pub frames_out: u64,
    /// Payload + header bytes read.
    pub bytes_in: u64,
    /// Payload + header bytes written.
    pub bytes_out: u64,
    /// Upload chunks ingested.
    pub upload_chunks: u64,
    /// Complete traces ingested across all clients.
    pub traces_ingested: u64,
    /// Records quarantined by streaming ingestion across all clients.
    pub records_quarantined: u64,
    /// Sessions admitted to the engine.
    pub sessions_accepted: u64,
    /// Submissions refused at the per-client bound.
    pub rejected_client: u64,
    /// Submissions refused by engine saturation or drain.
    pub rejected_engine: u64,
    /// Sessions cancelled by their client.
    pub sessions_cancelled: u64,
    /// Results delivered to clients.
    pub sessions_delivered: u64,
    /// Sessions that died without a result.
    pub sessions_lost: u64,
    /// Malformed frames / transport violations observed.
    pub protocol_errors: u64,
    /// Engine: real executions performed.
    pub executions: u64,
    /// Engine: intervention-cache hits.
    pub cache_hits: u64,
    /// Engine: intervention-cache misses.
    pub cache_misses: u64,
    /// Engine: records resident in the intervention cache.
    pub cache_entries: u64,
    /// Engine: sessions completed.
    pub sessions_completed: u64,
    /// Engine: highest simultaneously-pending session count observed.
    pub peak_pending: u64,
    // --- appended by the streaming protocol revision (new fields go at
    // the end: the stats payload is a flat u64 list in declaration order).
    /// Stores: traces evicted by windowed retention, across connections.
    pub store_evicted: u64,
    /// Stores: shard compaction passes that evicted at least one trace.
    pub store_compactions: u64,
    /// Standing queries: candidate predicates re-probed after a delta.
    pub view_reprobed: u64,
    /// Standing queries: candidate predicates skipped as unchanged.
    pub view_skipped: u64,
    /// Standing queries opened.
    pub watches_subscribed: u64,
    /// Watch events emitted to clients.
    pub watch_events: u64,
    // --- appended by the reactor revision. (The thread-per-connection
    // era's `idle_ticks` field, permanently zero under the reactor, was
    // removed from the struct; its wire slot is retained as a reserved
    // zero so the flat u64 layout below keeps every later field's index.)
    /// Engine shards the server routes across (1 = unsharded).
    pub engine_shards: u64,
    /// Highest simultaneously-open connection count observed.
    pub peak_connections: u64,
    /// Requests shipped from the reactor to the handler pool — the
    /// reactor's "wakeups that cost CPU" measure; an idle connection
    /// contributes zero between frames.
    pub handler_dispatches: u64,
}

impl ServerStats {
    /// Cache hit fraction in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// All submissions refused, across scopes.
    pub fn rejections(&self) -> u64 {
        self.rejected_client + self.rejected_engine
    }
}

fn put_stats(buf: &mut Vec<u8>, s: &ServerStats) {
    for v in [
        s.connections,
        s.connections_refused,
        s.active_connections,
        s.frames_in,
        s.frames_out,
        s.bytes_in,
        s.bytes_out,
        s.upload_chunks,
        s.traces_ingested,
        s.records_quarantined,
        s.sessions_accepted,
        s.rejected_client,
        s.rejected_engine,
        s.sessions_cancelled,
        s.sessions_delivered,
        s.sessions_lost,
        s.protocol_errors,
        s.executions,
        s.cache_hits,
        s.cache_misses,
        s.cache_entries,
        s.sessions_completed,
        s.peak_pending,
        s.store_evicted,
        s.store_compactions,
        s.view_reprobed,
        s.view_skipped,
        s.watches_subscribed,
        s.watch_events,
        // Reserved: the retired `idle_ticks` slot (always zero).
        0,
        s.engine_shards,
        s.peak_connections,
        s.handler_dispatches,
    ] {
        buf.put_u64_le(v);
    }
}

fn get_stats(r: &mut Reader<'_>) -> Result<ServerStats, WireError> {
    let mut stats = ServerStats {
        connections: r.u64()?,
        connections_refused: r.u64()?,
        active_connections: r.u64()?,
        frames_in: r.u64()?,
        frames_out: r.u64()?,
        bytes_in: r.u64()?,
        bytes_out: r.u64()?,
        upload_chunks: r.u64()?,
        traces_ingested: r.u64()?,
        records_quarantined: r.u64()?,
        sessions_accepted: r.u64()?,
        rejected_client: r.u64()?,
        rejected_engine: r.u64()?,
        sessions_cancelled: r.u64()?,
        sessions_delivered: r.u64()?,
        sessions_lost: r.u64()?,
        protocol_errors: r.u64()?,
        executions: r.u64()?,
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        cache_entries: r.u64()?,
        sessions_completed: r.u64()?,
        peak_pending: r.u64()?,
        store_evicted: r.u64()?,
        store_compactions: r.u64()?,
        view_reprobed: r.u64()?,
        view_skipped: r.u64()?,
        watches_subscribed: r.u64()?,
        watch_events: r.u64()?,
        engine_shards: 0,
        peak_connections: 0,
        handler_dispatches: 0,
    };
    // Tail tolerance: the stats payload grows by appending u64 slots, and
    // a failed `take` never advances the reader, so a shorter frame from
    // an older server decodes with the missing tail as zero and still
    // passes `expect_empty`. The first tail slot is the retired
    // `idle_ticks` field, kept as a reserved zero on encode.
    let _reserved_idle_ticks = r.u64().unwrap_or(0);
    stats.engine_shards = r.u64().unwrap_or(0);
    stats.peak_connections = r.u64().unwrap_or(0);
    stats.handler_dispatches = r.u64().unwrap_or(0);
    Ok(stats)
}

fn put_metric_value(buf: &mut Vec<u8>, value: &MetricValue) {
    match value {
        MetricValue::Counter(v) => {
            buf.put_u8(0);
            buf.put_u64_le(*v);
        }
        MetricValue::Gauge(v) => {
            buf.put_u8(1);
            buf.put_u64_le(*v);
        }
        MetricValue::Histogram(h) => {
            buf.put_u8(2);
            buf.put_u64_le(h.count);
            buf.put_u64_le(h.sum);
            buf.put_u64_le(h.max);
            buf.put_u32_le(h.buckets.len() as u32);
            for (index, count) in &h.buckets {
                buf.put_u8(*index);
                buf.put_u64_le(*count);
            }
        }
    }
}

/// Bytes of one occupied histogram bucket on the wire: index + count.
const BUCKET_BYTES: usize = 9;
/// Smallest possible metric entry: empty name (4-byte length prefix),
/// kind tag, u64 value.
const MIN_METRIC_BYTES: usize = 13;

fn get_metric_value(r: &mut Reader<'_>) -> Result<MetricValue, WireError> {
    Ok(match r.u8()? {
        0 => MetricValue::Counter(r.u64()?),
        1 => MetricValue::Gauge(r.u64()?),
        2 => {
            let count = r.u64()?;
            let sum = r.u64()?;
            let max = r.u64()?;
            let n = r.u32()? as usize;
            if r.remaining() / BUCKET_BYTES < n {
                return Err(WireError::Truncated {
                    needed: n * BUCKET_BYTES,
                    available: r.remaining(),
                });
            }
            let mut buckets = Vec::with_capacity(n);
            for _ in 0..n {
                buckets.push((r.u8()?, r.u64()?));
            }
            MetricValue::Histogram(HistogramSnapshot {
                count,
                sum,
                max,
                buckets,
            })
        }
        tag => {
            return Err(WireError::UnknownTag {
                what: "metric value",
                tag,
            })
        }
    })
}

fn put_metrics(buf: &mut Vec<u8>, snapshot: &MetricsSnapshot) {
    buf.put_u32_le(snapshot.entries.len() as u32);
    for entry in &snapshot.entries {
        put_string(buf, &entry.name);
        put_metric_value(buf, &entry.value);
    }
}

fn get_metrics(r: &mut Reader<'_>) -> Result<MetricsSnapshot, WireError> {
    let n = r.u32()? as usize;
    if r.remaining() / MIN_METRIC_BYTES < n {
        return Err(WireError::Truncated {
            needed: n * MIN_METRIC_BYTES,
            available: r.remaining(),
        });
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(MetricEntry {
            name: r.string()?,
            value: get_metric_value(r)?,
        });
    }
    Ok(MetricsSnapshot { entries })
}

/// A server-to-client frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to `Hello`.
    HelloOk {
        /// The server's protocol version.
        version: u8,
        /// Server self-identification.
        server: String,
    },
    /// Answer to every upload frame: running totals for the connection's
    /// current upload.
    UploadAck {
        /// Complete traces ingested so far.
        traces: u64,
        /// Records quarantined so far.
        quarantined: u64,
        /// Whether an analysis is available (failure present + refreshed).
        analyzed: bool,
    },
    /// The session was admitted; poll or stream it by this id.
    Submitted {
        /// The session's id on this connection.
        session: u32,
    },
    /// The session was refused by admission control. Typed, not an error:
    /// shedding load is the designed behavior at the bound.
    Overloaded {
        /// Which bound refused it.
        scope: OverloadScope,
        /// Sessions in flight at that bound.
        in_flight: u32,
        /// The bound itself.
        limit: u32,
    },
    /// Answer to `Poll` (and the terminal frame of a `Stream`).
    Status {
        /// The polled session id.
        session: u32,
        /// Its state; `Done` carries the full discovery result.
        state: SessionState,
    },
    /// Interim `Stream` frame: the engine-wide picture while the session
    /// runs (executions and cache traffic are the service's real progress
    /// measure — rounds only exist once discovery finishes).
    Progress {
        /// The streamed session id.
        session: u32,
        /// Engine executions so far (server-wide).
        executions: u64,
        /// Engine cache hits so far (server-wide).
        cache_hits: u64,
        /// Engine sessions completed so far (server-wide).
        sessions_completed: u64,
    },
    /// Answer to `Stats`.
    StatsOk(ServerStats),
    /// Answer to `Cancel`.
    Cancelled {
        /// The cancelled session id.
        session: u32,
        /// Whether the id named a live session.
        existed: bool,
    },
    /// The request could not be served; the connection stays usable
    /// unless the error was `Malformed` (the server closes after sending).
    Error {
        /// Typed error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to `Goodbye`; the server closes the connection after it.
    Bye,
    /// The standing query was opened; stream tails to this id.
    Subscribed {
        /// The watch's id on this connection.
        watch: u32,
    },
    /// Answer to `StreamTail`: what the watcher's tick over the appended
    /// tail observed.
    WatchEvents {
        /// The ticked watch id.
        watch: u32,
        /// Complete traces the watcher has ingested so far.
        traces: u64,
        /// The tick's events (empty when nothing new arrived or no
        /// failure is retained).
        events: Vec<WatchEvent>,
    },
    /// Answer to `Unsubscribe`.
    Unsubscribed {
        /// The closed watch id.
        watch: u32,
        /// Whether the id named a live watch.
        existed: bool,
    },
    /// Answer to `Metrics`: the full telemetry snapshot.
    MetricsReply(MetricsSnapshot),
}

const RESP_HELLO_OK: u8 = 1;
const RESP_UPLOAD_ACK: u8 = 2;
const RESP_SUBMITTED: u8 = 3;
const RESP_OVERLOADED: u8 = 4;
const RESP_STATUS: u8 = 5;
const RESP_PROGRESS: u8 = 6;
const RESP_STATS_OK: u8 = 7;
const RESP_CANCELLED: u8 = 8;
const RESP_ERROR: u8 = 9;
const RESP_BYE: u8 = 10;
const RESP_SUBSCRIBED: u8 = 11;
const RESP_WATCH_EVENTS: u8 = 12;
const RESP_UNSUBSCRIBED: u8 = 13;
const RESP_METRICS: u8 = 14;

impl Response {
    /// Encodes the response as one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let kind = match self {
            Response::HelloOk { version, server } => {
                p.put_u8(*version);
                put_string(&mut p, server);
                RESP_HELLO_OK
            }
            Response::UploadAck {
                traces,
                quarantined,
                analyzed,
            } => {
                p.put_u64_le(*traces);
                p.put_u64_le(*quarantined);
                p.put_u8(*analyzed as u8);
                RESP_UPLOAD_ACK
            }
            Response::Submitted { session } => {
                p.put_u32_le(*session);
                RESP_SUBMITTED
            }
            Response::Overloaded {
                scope,
                in_flight,
                limit,
            } => {
                p.put_u8(match scope {
                    OverloadScope::Client => 0,
                    OverloadScope::Engine => 1,
                    OverloadScope::Draining => 2,
                });
                p.put_u32_le(*in_flight);
                p.put_u32_le(*limit);
                RESP_OVERLOADED
            }
            Response::Status { session, state } => {
                p.put_u32_le(*session);
                match state {
                    SessionState::Pending => p.put_u8(0),
                    SessionState::Done(result) => {
                        p.put_u8(1);
                        put_result(&mut p, result);
                    }
                    SessionState::Lost => p.put_u8(2),
                    SessionState::Unknown => p.put_u8(3),
                }
                RESP_STATUS
            }
            Response::Progress {
                session,
                executions,
                cache_hits,
                sessions_completed,
            } => {
                p.put_u32_le(*session);
                p.put_u64_le(*executions);
                p.put_u64_le(*cache_hits);
                p.put_u64_le(*sessions_completed);
                RESP_PROGRESS
            }
            Response::StatsOk(stats) => {
                put_stats(&mut p, stats);
                RESP_STATS_OK
            }
            Response::Cancelled { session, existed } => {
                p.put_u32_le(*session);
                p.put_u8(*existed as u8);
                RESP_CANCELLED
            }
            Response::Error { code, message } => {
                put_error_code(&mut p, *code);
                put_string(&mut p, message);
                RESP_ERROR
            }
            Response::Bye => RESP_BYE,
            Response::Subscribed { watch } => {
                p.put_u32_le(*watch);
                RESP_SUBSCRIBED
            }
            Response::WatchEvents {
                watch,
                traces,
                events,
            } => {
                p.put_u32_le(*watch);
                p.put_u64_le(*traces);
                put_watch_events(&mut p, events);
                RESP_WATCH_EVENTS
            }
            Response::Unsubscribed { watch, existed } => {
                p.put_u32_le(*watch);
                p.put_u8(*existed as u8);
                RESP_UNSUBSCRIBED
            }
            Response::MetricsReply(snapshot) => {
                put_metrics(&mut p, snapshot);
                RESP_METRICS
            }
        };
        wire::frame(kind, &p)
    }

    /// Decodes a response from a frame's kind byte and payload.
    pub fn decode_payload(kind: u8, payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let resp = match kind {
            RESP_HELLO_OK => Response::HelloOk {
                version: r.u8()?,
                server: r.string()?,
            },
            RESP_UPLOAD_ACK => Response::UploadAck {
                traces: r.u64()?,
                quarantined: r.u64()?,
                analyzed: r.bool("analyzed flag")?,
            },
            RESP_SUBMITTED => Response::Submitted { session: r.u32()? },
            RESP_OVERLOADED => Response::Overloaded {
                scope: match r.u8()? {
                    0 => OverloadScope::Client,
                    1 => OverloadScope::Engine,
                    2 => OverloadScope::Draining,
                    tag => {
                        return Err(WireError::UnknownTag {
                            what: "overload scope",
                            tag,
                        })
                    }
                },
                in_flight: r.u32()?,
                limit: r.u32()?,
            },
            RESP_STATUS => Response::Status {
                session: r.u32()?,
                state: match r.u8()? {
                    0 => SessionState::Pending,
                    1 => SessionState::Done(get_result(&mut r)?),
                    2 => SessionState::Lost,
                    3 => SessionState::Unknown,
                    tag => {
                        return Err(WireError::UnknownTag {
                            what: "session state",
                            tag,
                        })
                    }
                },
            },
            RESP_PROGRESS => Response::Progress {
                session: r.u32()?,
                executions: r.u64()?,
                cache_hits: r.u64()?,
                sessions_completed: r.u64()?,
            },
            RESP_STATS_OK => Response::StatsOk(get_stats(&mut r)?),
            RESP_CANCELLED => Response::Cancelled {
                session: r.u32()?,
                existed: r.bool("cancel existed flag")?,
            },
            RESP_ERROR => Response::Error {
                code: get_error_code(&mut r)?,
                message: r.string()?,
            },
            RESP_BYE => Response::Bye,
            RESP_SUBSCRIBED => Response::Subscribed { watch: r.u32()? },
            RESP_WATCH_EVENTS => Response::WatchEvents {
                watch: r.u32()?,
                traces: r.u64()?,
                events: get_watch_events(&mut r)?,
            },
            RESP_UNSUBSCRIBED => Response::Unsubscribed {
                watch: r.u32()?,
                existed: r.bool("unsubscribe existed flag")?,
            },
            RESP_METRICS => Response::MetricsReply(get_metrics(&mut r)?),
            tag => {
                return Err(WireError::UnknownTag {
                    what: "response kind",
                    tag,
                })
            }
        };
        r.expect_empty()?;
        Ok(resp)
    }

    /// Decodes one response frame from the front of `buf`, returning the
    /// response and the bytes consumed.
    pub fn decode(buf: &[u8], max_payload: usize) -> Result<(Response, usize), WireError> {
        let (kind, payload, consumed) = wire::split_frame(buf, max_payload)?;
        Ok((Response::decode_payload(kind, payload)?, consumed))
    }
}

/// Rebuilds `DiscoverOptions` from a submit frame's fields.
pub fn options_from_wire(prune_quorum: u32) -> DiscoverOptions {
    DiscoverOptions {
        prune_quorum: prune_quorum.max(1) as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_the_frame_layer() {
        let req = Request::SubmitDiscovery {
            name: "npgsql/aid".into(),
            program: ProgramSpec::Case {
                name: "npgsql".into(),
            },
            strategy: Strategy::Custom {
                branch: true,
                prune: false,
            },
            discovery_seed: 11,
            runs_per_round: 20,
            first_seed: 1_000_000,
            prune_quorum: 1,
        };
        let bytes = req.encode();
        let (back, consumed) = Request::decode(&bytes, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(back, req);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn done_status_carries_a_full_result() {
        let p = |i: u32| PredicateId::from_raw(i);
        let resp = Response::Status {
            session: 9,
            state: SessionState::Done(DiscoveryResult {
                causal: vec![p(0), p(1)],
                spurious: vec![p(2)],
                failure: p(3),
                rounds: 4,
                log: vec![RoundLog {
                    phase: Phase::Giwp,
                    intervened: vec![p(0)],
                    stopped: true,
                    confirmed: vec![p(0)],
                    pruned: vec![],
                }],
            }),
        };
        let bytes = resp.encode();
        let (back, _) = Response::decode(&bytes, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn subscribe_and_watch_events_round_trip() {
        let req = Request::Subscribe {
            name: "ci-tail".into(),
            analysis: AnalysisSpec::Case {
                name: "npgsql".into(),
            },
            program: ProgramSpec::Case {
                name: "npgsql".into(),
            },
            strategy: Strategy::Aid,
            discovery_seed: 11,
            runs_per_round: 10,
            first_seed: 1_000_000,
            prune_quorum: 1,
            retention_traces: 500,
            retention_age: u64::MAX,
            max_probe_runs: u64::MAX,
        };
        let bytes = req.encode();
        let (back, consumed) = Request::decode(&bytes, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(back, req);
        assert_eq!(consumed, bytes.len());

        let p = |i: u32| PredicateId::from_raw(i);
        let result = DiscoveryResult {
            causal: vec![p(2)],
            spurious: vec![p(0)],
            failure: p(3),
            rounds: 2,
            log: vec![],
        };
        let resp = Response::WatchEvents {
            watch: 7,
            traces: 41,
            events: vec![
                WatchEvent::NewFailureClass {
                    signature: FailureSignature {
                        kind: "NullReferenceException".into(),
                        method: MethodId::from_raw(5),
                    },
                    classes: 2,
                },
                WatchEvent::Converged {
                    result: result.clone(),
                    reprobed: 3,
                    skipped: 9,
                    resubmitted: true,
                },
                WatchEvent::RootChanged {
                    root: Some(p(2)),
                    result,
                },
                WatchEvent::BudgetExhausted {
                    probe_runs: 120,
                    budget: 100,
                },
            ],
        };
        let bytes = resp.encode();
        let (back, _) = Response::decode(&bytes, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn metrics_reply_round_trips_every_value_kind() {
        let resp = Response::MetricsReply(MetricsSnapshot {
            entries: vec![
                MetricEntry {
                    name: "engine.shard0.cache.hits".into(),
                    value: MetricValue::Counter(42),
                },
                MetricEntry {
                    name: "serve.active_connections".into(),
                    value: MetricValue::Gauge(3),
                },
                MetricEntry {
                    name: "serve.reactor.dwell_us".into(),
                    value: MetricValue::Histogram(HistogramSnapshot {
                        count: 10,
                        sum: 1234,
                        max: 900,
                        buckets: vec![(0, 1), (7, 6), (10, 3)],
                    }),
                },
            ],
        });
        let bytes = resp.encode();
        let (back, consumed) = Response::decode(&bytes, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(back, resp);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn metrics_reply_bounds_allocation_by_payload_size() {
        // A claimed entry count far beyond what the payload holds must be
        // refused before any allocation, not trusted.
        let mut p = Vec::new();
        p.put_u32_le(u32::MAX);
        let frame = wire::frame(RESP_METRICS, &p);
        let (kind, payload, _) = wire::split_frame(&frame, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        assert!(matches!(
            Response::decode_payload(kind, payload),
            Err(WireError::Truncated { .. })
        ));
    }

    /// A stats frame from the thread-per-connection era — 30 u64 slots
    /// ending at the (then-live) `idle_ticks` counter — still decodes:
    /// the reserved slot is discarded and the reactor-era tail fields
    /// come back zero.
    #[test]
    fn pre_reactor_stats_frames_still_decode() {
        let stats = ServerStats {
            connections: 7,
            frames_in: 21,
            watch_events: 5,
            engine_shards: 4,
            peak_connections: 3,
            handler_dispatches: 19,
            ..ServerStats::default()
        };
        let mut bytes = Response::StatsOk(stats.clone()).encode();
        // Truncate to the 30-slot layout (the 30th slot is the reserved
        // zero that was `idle_ticks`) and fix up the length field.
        bytes.truncate(wire::HEADER_LEN + 30 * 8);
        let len = (bytes.len() - wire::HEADER_LEN) as u32;
        bytes[6..10].copy_from_slice(&len.to_le_bytes());
        let (back, _) = Response::decode(&bytes, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        let Response::StatsOk(back) = back else {
            panic!("expected StatsOk, got {back:?}");
        };
        assert_eq!(back.connections, 7);
        assert_eq!(back.frames_in, 21);
        assert_eq!(back.watch_events, 5);
        // The reactor-era tail was not on the wire: it decodes as zero.
        assert_eq!(back.engine_shards, 0);
        assert_eq!(back.peak_connections, 0);
        assert_eq!(back.handler_dispatches, 0);
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut bytes = Request::Stats.encode();
        // Grow the payload by one byte and fix up the length field.
        bytes.push(0xAA);
        let len = (bytes.len() - wire::HEADER_LEN) as u32;
        bytes[6..10].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            Request::decode(&bytes, wire::DEFAULT_MAX_FRAME_LEN).unwrap_err(),
            WireError::TrailingBytes { extra: 1 }
        );
    }
}
