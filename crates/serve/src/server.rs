//! The session server: one readiness-driven reactor thread multiplexing
//! every connection, a handler pool for request work, a sharded engine,
//! and a per-connection [`TraceStore`]/analysis.
//!
//! **Reactor.** Connections are nonblocking per-connection state machines
//! driven by the reactor module: an idle connection costs a registered
//! fd (TCP) or waker (in-proc duplex), not a parked thread burning a
//! wakeup every 100 ms–1 s. Decoded requests are shipped — together with
//! the connection's `ClientCtx` — to a small handler pool, because a
//! request may legitimately block (a watch tick runs discovery probes to
//! completion); the reactor itself never does.
//!
//! **Sharding.** The engine is a [`ShardedEngine`]: N intervention-cache
//! partitions over one worker pool, routed by the program+catalog+failure
//! fingerprint, so identical recipes from any client (one-shot *and*
//! watcher re-probes) land on the same shard and cache entry.
//!
//! **Admission control.** Three bounds shed load with typed replies
//! instead of queueing unboundedly:
//!
//! 1. *per connection* — at most `max_sessions_per_client` undelivered
//!    sessions; a result frees its slot when the client polls it.
//! 2. *server-wide* — each shard's `max_pending` bound, enforced through
//!    the non-blocking `try_submit` so submission bursts never block
//!    handler threads.
//! 3. *connections* — a CAS reservation on `active_connections` (no
//!    load-then-increment window), refused with `TooManyConnections`.
//!
//! **Drain.** [`ServerHandle::shutdown`] stops accepting, closes idle and
//! streaming connections at the next reactor tick (streams get a terminal
//! `Error { code: Draining }`), waits out in-flight requests, then drains
//! the engine — in-flight sessions complete engine-side; new submissions
//! are refused with `Overloaded { scope: Draining }`.

use crate::protocol::{
    options_from_wire, AnalysisSpec, ErrorCode, OverloadScope, ProgramSpec, Request, Response,
    ServerStats, SessionState,
};
use crate::transport::{EventConn, Listener, ReadySignal};
use crate::wire::{self, PROTOCOL_VERSION};
use aid_cases::all_cases;
use aid_core::Strategy;
use aid_engine::{DiscoveryJob, EngineConfig, EngineHandle, Session, SessionPoll, ShardedEngine};
use aid_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use aid_sim::Simulator;
use aid_store::{RetentionPolicy, StoreConfig, TraceStore};
use aid_synth::SynthParams;
use aid_watch::{WatchConfig, Watcher};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server sizing and policy knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Engine sizing (worker pool, cache, `max_pending` backpressure
    /// bound — the server-wide admission limit).
    pub engine: EngineConfig,
    /// Per-connection trace-store sizing and extraction configuration.
    pub store: StoreConfig,
    /// Undelivered sessions one connection may hold before submissions
    /// are refused with `Overloaded { scope: Client }`.
    pub max_sessions_per_client: usize,
    /// Standing queries one connection may hold open before `Subscribe`
    /// is refused with `Overloaded { scope: Client }` — each watch costs
    /// a windowed trace store and re-runs discovery on its ticks, so the
    /// bound sits well below the session bound.
    pub max_watches_per_client: usize,
    /// Simultaneously open connections before further accepts are
    /// answered with `Error { code: TooManyConnections }` and closed —
    /// each connection costs a handler thread and a trace store, so the
    /// cap must sit in front of them.
    pub max_connections: usize,
    /// Cumulative upload bytes one connection may ingest per upload
    /// (`BeginUpload` resets the budget) before chunks are refused with
    /// `Error { code: UploadTooLarge }`.
    pub max_upload_bytes: u64,
    /// Largest accepted frame payload.
    pub max_frame_len: usize,
    /// Cadence of `Progress` frames while serving a `Stream` request.
    pub stream_poll: Duration,
    /// Engine shards: independent intervention-cache partitions over one
    /// shared worker pool, consistent-hashed by job fingerprint. Each
    /// shard gets the full `engine.max_pending` budget (a popular recipe
    /// routes every client to one shard; dividing the budget would shed
    /// exactly that workload). `0` is treated as 1.
    pub engine_shards: usize,
    /// Handler pool size; `0` picks `max(4, engine.workers)`. Handlers
    /// run request work the reactor must not block on (uploads, watch
    /// ticks); they are I/O-parked most of the time, so the pool sits
    /// above the CPU worker pool, not beside it.
    pub handler_threads: usize,
    /// Server self-identification, echoed in `HelloOk`.
    pub server_name: String,
    /// Execution backend for simulators rebuilt from [`ProgramSpec`]s
    /// (bytecode by default; traces and results are backend-independent,
    /// so this only affects throughput).
    pub backend: aid_sim::Backend,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: EngineConfig::default(),
            store: StoreConfig::default(),
            max_sessions_per_client: 4,
            max_watches_per_client: 2,
            max_connections: 256,
            // Generous next to real corpora (the six case studies encode
            // to ~100 KiB each) while bounding a hostile uploader.
            max_upload_bytes: 64 << 20,
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
            stream_poll: Duration::from_millis(1),
            engine_shards: 4,
            handler_threads: 0,
            server_name: "aid-serve".to_string(),
            backend: aid_sim::Backend::default(),
        }
    }
}

/// Lock-free server-side counters (the non-engine half of
/// [`ServerStats`]), held as [`aid_obs`] registry handles: the wire
/// `Stats` reply and the `Metrics` exposition read the same cells, so
/// the two can never disagree.
pub(crate) struct Counters {
    pub(crate) connections: Counter,
    pub(crate) connections_refused: Counter,
    active_connections: Gauge,
    pub(crate) frames_in: Counter,
    pub(crate) frames_out: Counter,
    pub(crate) bytes_in: Counter,
    pub(crate) bytes_out: Counter,
    upload_chunks: Counter,
    traces_ingested: Counter,
    records_quarantined: Counter,
    sessions_accepted: Counter,
    rejected_client: Counter,
    rejected_engine: Counter,
    sessions_cancelled: Counter,
    sessions_delivered: Counter,
    sessions_lost: Counter,
    pub(crate) protocol_errors: Counter,
    store_evicted: Counter,
    store_compactions: Counter,
    view_reprobed: Counter,
    view_skipped: Counter,
    watches_subscribed: Counter,
    watch_events: Counter,
    peak_connections: Gauge,
    pub(crate) handler_dispatches: Counter,
}

impl Default for Counters {
    /// Detached (unregistered) cells, for tests that exercise the
    /// reservation logic without a server.
    fn default() -> Self {
        Counters {
            connections: Counter::detached(),
            connections_refused: Counter::detached(),
            active_connections: Gauge::detached(),
            frames_in: Counter::detached(),
            frames_out: Counter::detached(),
            bytes_in: Counter::detached(),
            bytes_out: Counter::detached(),
            upload_chunks: Counter::detached(),
            traces_ingested: Counter::detached(),
            records_quarantined: Counter::detached(),
            sessions_accepted: Counter::detached(),
            rejected_client: Counter::detached(),
            rejected_engine: Counter::detached(),
            sessions_cancelled: Counter::detached(),
            sessions_delivered: Counter::detached(),
            sessions_lost: Counter::detached(),
            protocol_errors: Counter::detached(),
            store_evicted: Counter::detached(),
            store_compactions: Counter::detached(),
            view_reprobed: Counter::detached(),
            view_skipped: Counter::detached(),
            watches_subscribed: Counter::detached(),
            watch_events: Counter::detached(),
            peak_connections: Gauge::detached(),
            handler_dispatches: Counter::detached(),
        }
    }
}

impl Counters {
    /// Registers every server counter in `metrics` under `serve.*`.
    fn new(metrics: &MetricsRegistry) -> Counters {
        Counters {
            connections: metrics.counter("serve.connections"),
            connections_refused: metrics.counter("serve.connections_refused"),
            active_connections: metrics.gauge("serve.active_connections"),
            frames_in: metrics.counter("serve.frames_in"),
            frames_out: metrics.counter("serve.frames_out"),
            bytes_in: metrics.counter("serve.bytes_in"),
            bytes_out: metrics.counter("serve.bytes_out"),
            upload_chunks: metrics.counter("serve.upload_chunks"),
            traces_ingested: metrics.counter("serve.traces_ingested"),
            records_quarantined: metrics.counter("serve.records_quarantined"),
            sessions_accepted: metrics.counter("serve.sessions_accepted"),
            rejected_client: metrics.counter("serve.rejected_client"),
            rejected_engine: metrics.counter("serve.rejected_engine"),
            sessions_cancelled: metrics.counter("serve.sessions_cancelled"),
            sessions_delivered: metrics.counter("serve.sessions_delivered"),
            sessions_lost: metrics.counter("serve.sessions_lost"),
            protocol_errors: metrics.counter("serve.protocol_errors"),
            store_evicted: metrics.counter("serve.store.evicted"),
            store_compactions: metrics.counter("serve.store.compactions"),
            view_reprobed: metrics.counter("serve.view.reprobed"),
            view_skipped: metrics.counter("serve.view.skipped"),
            watches_subscribed: metrics.counter("serve.watches_subscribed"),
            watch_events: metrics.counter("serve.watch_events"),
            peak_connections: metrics.gauge("serve.peak_connections"),
            handler_dispatches: metrics.counter("serve.handler_dispatches"),
        }
    }
    /// Atomically claims a connection slot below `max`, or refuses.
    ///
    /// This must be a single CAS, not a load-then-increment: the load's
    /// answer is stale by the time the increment lands, so two racing
    /// accepts at `max - 1` would both pass the check and over-admit.
    /// The single-acceptor loop hid that window; the reactor (and any
    /// future multi-shard accept path) must not rely on it.
    pub(crate) fn try_reserve_connection(&self, max: u64) -> bool {
        let reserved = self
            .active_connections
            .fetch_update(|active| (active < max).then_some(active + 1))
            .is_ok();
        if reserved {
            self.peak_connections
                .record_max(self.active_connections.get());
        }
        reserved
    }

    /// Returns a reservation taken by
    /// [`Counters::try_reserve_connection`].
    pub(crate) fn release_connection(&self) {
        self.active_connections.sub(1);
    }
}

/// The server's latency histograms, one handle per timed path. Registered
/// alongside [`Counters`] so a single snapshot carries both.
pub(crate) struct Timings {
    /// Reactor wake-to-park dwell: how long one reactor wakeup spends
    /// draining completions, dispatching, flushing and retiring before it
    /// parks again — the head-of-line budget every connection shares.
    pub(crate) reactor_dwell: Histogram,
    /// Handler-pool queue wait: dispatch to dequeue.
    pub(crate) handler_queue_wait: Histogram,
    /// Pure request-handling time inside a handler thread.
    pub(crate) handler_handle: Histogram,
    /// Full frame turnaround: reactor dispatch to responses queued for
    /// write (queue wait + handling + completion-drain latency).
    pub(crate) frame: Histogram,
    /// One standing-query `tick()` (discovery probes run to completion).
    pub(crate) watch_tick: Histogram,
}

impl Timings {
    fn new(metrics: &MetricsRegistry) -> Timings {
        Timings {
            reactor_dwell: metrics.histogram("serve.reactor.dwell_us"),
            handler_queue_wait: metrics.histogram("serve.handler.queue_wait_us"),
            handler_handle: metrics.histogram("serve.handler.handle_us"),
            frame: metrics.histogram("serve.frame_us"),
            watch_tick: metrics.histogram("serve.watch.tick_us"),
        }
    }
}

pub(crate) struct ServerShared {
    pub(crate) config: ServeConfig,
    pub(crate) engine: ShardedEngine,
    pub(crate) counters: Counters,
    pub(crate) timings: Timings,
    /// The unified registry: engine shards, pool, store and serve tiers
    /// all register here, so one snapshot is the whole server.
    pub(crate) metrics: Arc<MetricsRegistry>,
    pub(crate) shutdown: AtomicBool,
    next_session: AtomicU32,
}

impl ServerShared {
    /// Handler pool sizing: the configured count, or a floor that keeps a
    /// few request lanes open even on a single-core host (handlers park
    /// on engine results more than they burn CPU).
    pub(crate) fn handler_threads(&self) -> usize {
        if self.config.handler_threads > 0 {
            self.config.handler_threads
        } else {
            self.config.engine.workers.max(4)
        }
    }

    pub(crate) fn stats(&self) -> ServerStats {
        let c = &self.counters;
        let e = self.engine.stats();
        ServerStats {
            connections: c.connections.get(),
            connections_refused: c.connections_refused.get(),
            active_connections: c.active_connections.get(),
            frames_in: c.frames_in.get(),
            frames_out: c.frames_out.get(),
            bytes_in: c.bytes_in.get(),
            bytes_out: c.bytes_out.get(),
            upload_chunks: c.upload_chunks.get(),
            traces_ingested: c.traces_ingested.get(),
            records_quarantined: c.records_quarantined.get(),
            sessions_accepted: c.sessions_accepted.get(),
            rejected_client: c.rejected_client.get(),
            rejected_engine: c.rejected_engine.get(),
            sessions_cancelled: c.sessions_cancelled.get(),
            sessions_delivered: c.sessions_delivered.get(),
            sessions_lost: c.sessions_lost.get(),
            protocol_errors: c.protocol_errors.get(),
            executions: e.executions,
            cache_hits: e.cache_hits,
            cache_misses: e.cache_misses,
            cache_entries: e.cache_entries as u64,
            sessions_completed: e.sessions_completed,
            peak_pending: e.peak_pending,
            store_evicted: c.store_evicted.get(),
            store_compactions: c.store_compactions.get(),
            view_reprobed: c.view_reprobed.get(),
            view_skipped: c.view_skipped.get(),
            watches_subscribed: c.watches_subscribed.get(),
            watch_events: c.watch_events.get(),
            engine_shards: self.engine.shard_count() as u64,
            peak_connections: c.peak_connections.get(),
            handler_dispatches: c.handler_dispatches.get(),
        }
    }
}

/// Builder entry points for a running server.
pub struct Server;

impl Server {
    /// Starts a server over any [`Listener`] whose connections the reactor
    /// can drive. The returned handle owns the reactor thread; dropping it
    /// (or calling [`ServerHandle::shutdown`]) drains the server.
    pub fn start<L: Listener>(listener: L, config: ServeConfig) -> ServerHandle
    where
        L::Conn: EventConn,
    {
        let metrics = Arc::new(MetricsRegistry::from_env());
        let engine =
            ShardedEngine::with_metrics(config.engine, config.engine_shards, Arc::clone(&metrics));
        let shared = Arc::new(ServerShared {
            config,
            engine,
            counters: Counters::new(&metrics),
            timings: Timings::new(&metrics),
            metrics,
            shutdown: AtomicBool::new(false),
            next_session: AtomicU32::new(1),
        });
        let signal = ReadySignal::new();
        let label = listener.label();
        let reactor_shared = Arc::clone(&shared);
        let reactor_signal = Arc::clone(&signal);
        let reactor = std::thread::Builder::new()
            .name(format!("aid-serve-reactor {label}"))
            .spawn(move || crate::reactor::reactor_loop(listener, reactor_shared, reactor_signal))
            .expect("spawn reactor thread");
        ServerHandle {
            shared,
            signal,
            reactor: Some(reactor),
        }
    }

    /// Convenience: a server on loopback/LAN TCP. Returns the handle and
    /// the bound address (the real port when `addr` used port 0).
    pub fn start_tcp(
        addr: impl std::net::ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<(ServerHandle, std::net::SocketAddr)> {
        let transport = crate::transport::TcpTransport::bind(addr)?;
        let local = transport.local_addr();
        Ok((Server::start(transport, config), local))
    }

    /// Convenience: an in-process server for deterministic tests. Returns
    /// the handle and a cloneable connector clients dial through.
    pub fn start_in_proc(config: ServeConfig) -> (ServerHandle, crate::transport::InProcConnector) {
        let (listener, connector) = crate::transport::in_proc();
        (Server::start(listener, config), connector)
    }
}

/// A running server. Dropping the handle drains the server (equivalent to
/// [`ServerHandle::shutdown`] with the final stats discarded).
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    signal: Arc<ReadySignal>,
    reactor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// A live telemetry snapshot (no client round-trip).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Graceful drain: stops accepting, closes idle and streaming
    /// connections at the next reactor tick (streams get a terminal
    /// `Error { code: Draining }`; a mid-request connection finishes the
    /// request first), then drains the engine. In-flight sessions
    /// complete; new submissions are refused as
    /// `Overloaded { scope: Draining }`. Returns the final telemetry
    /// snapshot.
    pub fn shutdown(mut self) -> ServerStats {
        self.drain();
        self.shared.stats()
    }

    fn drain(&mut self) {
        self.shared.shutdown.store(true, Relaxed);
        // The reactor may be parked on the signal with nothing inbound;
        // the flag alone would wait out the park cap.
        self.signal.notify(crate::reactor::WAKE_TOKEN);
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        self.shared.engine.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.reactor.is_some() {
            self.drain();
        }
    }
}

/// A store's counters already folded into the server-wide picture — the
/// store's own counters are cumulative, so folding must be by delta or a
/// second fold double-counts.
#[derive(Clone, Copy, Default)]
struct StoreFold {
    traces: u64,
    quarantined: u64,
    evicted: u64,
    compactions: u64,
    reprobed: u64,
    skipped: u64,
}

impl StoreFold {
    /// Folds the delta between `stats` and this record into the
    /// server-wide counters, then advances the record.
    fn fold(&mut self, counters: &Counters, stats: &aid_store::StoreStats) {
        let now = StoreFold {
            traces: stats.ingest.traces,
            quarantined: stats.ingest.quarantined,
            evicted: stats.columns.evicted as u64,
            compactions: stats.columns.compactions as u64,
            reprobed: stats.view.predicates_reprobed,
            skipped: stats.view.predicates_skipped,
        };
        counters.traces_ingested.add(now.traces - self.traces);
        counters
            .records_quarantined
            .add(now.quarantined - self.quarantined);
        counters.store_evicted.add(now.evicted - self.evicted);
        counters
            .store_compactions
            .add(now.compactions - self.compactions);
        counters.view_reprobed.add(now.reprobed - self.reprobed);
        counters.view_skipped.add(now.skipped - self.skipped);
        *self = now;
    }
}

/// One standing query and its fold cursor.
struct WatchEntry {
    watcher: Watcher,
    folded: StoreFold,
}

/// Per-connection state: the client's trace store, its undelivered
/// session tickets, and its standing queries. The reactor owns it while
/// the connection is reading or streaming and ships it (by move) to a
/// handler thread for the duration of each request.
pub(crate) struct ClientCtx {
    store: TraceStore,
    sessions: HashMap<u32, Session>,
    watches: HashMap<u32, WatchEntry>,
    next_watch: u32,
    engine: EngineHandle,
    /// Fold cursor for the upload store's counters.
    folded: StoreFold,
    /// Bytes ingested against the current upload's quota. Only bulk
    /// upload chunks count; tail appends carry a per-frame bound instead
    /// (their retention window, not a cumulative quota, bounds what the
    /// server keeps).
    upload_bytes: u64,
}

impl ClientCtx {
    pub(crate) fn new(shared: &ServerShared) -> ClientCtx {
        ClientCtx {
            store: TraceStore::with_metrics(
                shared.config.store.clone(),
                Some(shared.engine_pool()),
                &shared.metrics,
            ),
            sessions: HashMap::new(),
            watches: HashMap::new(),
            next_watch: 1,
            engine: shared.engine.handle(),
            folded: StoreFold::default(),
            upload_bytes: 0,
        }
    }

    /// Folds what the connection's stores observed into the server-wide
    /// counters; called exactly once, when the connection retires
    /// (undelivered tickets are discarded and the engine runs their
    /// sessions to completion internally).
    pub(crate) fn fold_final(&mut self, shared: &ServerShared) {
        self.folded.fold(&shared.counters, &self.store.stats());
        for entry in self.watches.values_mut() {
            entry
                .folded
                .fold(&shared.counters, &entry.watcher.store_stats());
        }
    }
}

/// What the reactor should do with the connection after a request.
pub(crate) enum After {
    /// Back to reading (dispatch the next pipelined request, if any).
    Continue,
    /// Flush the queued responses, then close.
    Close,
    /// Enter the streaming state: the reactor polls the session on the
    /// `stream_poll` cadence and emits deduplicated `Progress` frames
    /// until a terminal `Status` (or a drain) ends the stream.
    Stream {
        /// The session ticket being streamed.
        session: u32,
    },
}

impl ServerShared {
    fn engine_pool(&self) -> Arc<aid_engine::WorkerPool> {
        self.engine.pool()
    }
}

/// Serves one decoded request against the connection's context. Pure with
/// respect to the transport: responses are returned for the reactor to
/// write, never written here — a handler thread may block on engine work,
/// but it never touches a socket.
pub(crate) fn handle_request(
    shared: &Arc<ServerShared>,
    ctx: &mut ClientCtx,
    request: Request,
) -> (Vec<Response>, After) {
    let mut out = Vec::with_capacity(1);
    let mut send = |response: Response| out.push(response);
    match request {
        Request::Hello { client: _ } => {
            send(Response::HelloOk {
                version: PROTOCOL_VERSION,
                server: shared.config.server_name.clone(),
            });
        }
        Request::BeginUpload { analysis } => {
            // A fresh store: each upload is its own corpus and analysis,
            // extracted under the declared configuration — an analysis is
            // only comparable to an in-process one run under the same
            // purity markings and safety knobs.
            match resolve_extraction(shared, &analysis) {
                Ok(extraction) => {
                    let mut store_config = shared.config.store.clone();
                    store_config.extraction = extraction;
                    // Fold what the replaced store had ingested, then
                    // reset the cursor: the fresh store's counters
                    // restart at zero.
                    ctx.folded.fold(&shared.counters, &ctx.store.stats());
                    ctx.store = TraceStore::with_metrics(
                        store_config,
                        Some(shared.engine_pool()),
                        &shared.metrics,
                    );
                    ctx.folded = StoreFold::default();
                    ctx.upload_bytes = 0;
                    send(upload_ack(ctx, false));
                }
                Err((code, message)) => send(Response::Error { code, message }),
            }
        }
        Request::UploadChunk { bytes } => {
            // Per-upload byte quota: nothing else bounds how much a
            // client can make the server retain, and sessions-level
            // admission control runs far too late to help.
            if ctx.upload_bytes + bytes.len() as u64 > shared.config.max_upload_bytes {
                send(Response::Error {
                    code: ErrorCode::UploadTooLarge,
                    message: format!(
                        "upload exceeds the {} byte quota; BeginUpload resets it",
                        shared.config.max_upload_bytes
                    ),
                });
            } else {
                ctx.upload_bytes += bytes.len() as u64;
                ctx.store.ingest_bytes(&bytes);
                shared.counters.upload_chunks.inc();
                send(upload_ack(ctx, false));
            }
        }
        Request::FinishUpload => {
            ctx.store.finish_ingest();
            let analyzed = ctx.store.refresh().is_some();
            // Fold this upload's totals into the server-wide picture at
            // the boundary where they stop changing — by delta, because
            // the decoder's counters are cumulative and a client may run
            // several streams through one store.
            ctx.folded.fold(&shared.counters, &ctx.store.stats());
            send(upload_ack(ctx, analyzed));
        }
        Request::SubmitDiscovery {
            name,
            program,
            strategy,
            discovery_seed,
            runs_per_round,
            first_seed,
            prune_quorum,
        } => {
            send(admit(
                shared,
                ctx,
                name,
                program,
                strategy,
                discovery_seed,
                runs_per_round,
                first_seed,
                prune_quorum,
            ));
        }
        Request::Poll { session } => {
            let state = poll_session(shared, ctx, session);
            send(Response::Status { session, state });
        }
        Request::Stream { session } => {
            // No blocking loop here: the reactor turns the stream into a
            // timer-armed continuation, polling the ticket each
            // `stream_poll` tick (and checking the drain flag, so a
            // streaming client can no longer hold shutdown open until
            // its session terminates).
            return (out, After::Stream { session });
        }
        Request::Stats => {
            send(Response::StatsOk(shared.stats()));
        }
        Request::Metrics => {
            send(Response::MetricsReply(shared.metrics.snapshot()));
        }
        Request::Cancel { session } => {
            let existed = ctx.sessions.remove(&session).is_some();
            if existed {
                shared.counters.sessions_cancelled.inc();
            }
            send(Response::Cancelled { session, existed });
        }
        Request::Goodbye => {
            send(Response::Bye);
            return (out, After::Close);
        }
        Request::Subscribe {
            name,
            analysis,
            program,
            strategy,
            discovery_seed,
            runs_per_round,
            first_seed,
            prune_quorum,
            retention_traces,
            retention_age,
            max_probe_runs,
        } => {
            send(admit_watch(
                shared,
                ctx,
                name,
                &analysis,
                &program,
                strategy,
                discovery_seed,
                runs_per_round,
                first_seed,
                prune_quorum,
                retention_traces,
                retention_age,
                max_probe_runs,
            ));
        }
        Request::StreamTail { watch, bytes, fin } => {
            // Tails carry a *per-frame* bound, not the upload's cumulative
            // quota: a long-lived watcher streams small appends forever,
            // and counting them against a budget only `BeginUpload` resets
            // would eventually refuse a perfectly healthy client. What the
            // server *retains* is bounded by the watch's retention window,
            // so the hostile-uploader bound survives — one frame can still
            // not exceed the quota (nor `max_frame_len`, which the wire
            // layer enforces first).
            if bytes.len() as u64 > shared.config.max_upload_bytes {
                send(Response::Error {
                    code: ErrorCode::UploadTooLarge,
                    message: format!(
                        "tail frame exceeds the {} byte per-frame bound",
                        shared.config.max_upload_bytes
                    ),
                });
                return (out, After::Continue);
            }
            let Some(entry) = ctx.watches.get_mut(&watch) else {
                send(Response::Error {
                    code: ErrorCode::UnknownWatch,
                    message: format!("no standing query with id {watch} on this connection"),
                });
                return (out, After::Continue);
            };
            shared.counters.upload_chunks.inc();
            entry.watcher.push_bytes(&bytes);
            if fin {
                entry.watcher.finish_tail();
            }
            let tick_started = Instant::now();
            let ticked = entry.watcher.tick();
            shared
                .timings
                .watch_tick
                .record_duration(tick_started.elapsed());
            let response = match ticked {
                Ok(events) => {
                    shared.counters.watch_events.add(events.len() as u64);
                    entry
                        .folded
                        .fold(&shared.counters, &entry.watcher.store_stats());
                    Response::WatchEvents {
                        watch,
                        traces: entry.watcher.store_stats().ingest.traces,
                        events,
                    }
                }
                Err(e) => Response::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                },
            };
            send(response);
        }
        Request::Unsubscribe { watch } => {
            let existed = match ctx.watches.remove(&watch) {
                Some(mut entry) => {
                    entry
                        .folded
                        .fold(&shared.counters, &entry.watcher.store_stats());
                    true
                }
                None => false,
            };
            send(Response::Unsubscribed { watch, existed });
        }
    }
    (out, After::Continue)
}

/// Admission control + watcher construction for one standing query.
#[allow(clippy::too_many_arguments)]
fn admit_watch(
    shared: &ServerShared,
    ctx: &mut ClientCtx,
    name: String,
    analysis: &AnalysisSpec,
    program: &ProgramSpec,
    strategy: Strategy,
    discovery_seed: u64,
    runs_per_round: u32,
    first_seed: u64,
    prune_quorum: u32,
    retention_traces: u64,
    retention_age: u64,
    max_probe_runs: u64,
) -> Response {
    let limit = shared.config.max_watches_per_client;
    if shared.shutdown.load(Relaxed) {
        shared.counters.rejected_engine.inc();
        return Response::Overloaded {
            scope: OverloadScope::Draining,
            in_flight: ctx.watches.len() as u32,
            limit: limit as u32,
        };
    }
    if ctx.watches.len() >= limit {
        shared.counters.rejected_client.inc();
        return Response::Overloaded {
            scope: OverloadScope::Client,
            in_flight: ctx.watches.len() as u32,
            limit: limit as u32,
        };
    }
    let simulator = match program {
        ProgramSpec::Synth { .. } => {
            return Response::Error {
                code: ErrorCode::Unwatchable,
                message: "the synthetic oracle consumes no trace stream; nothing to watch".into(),
            }
        }
        ProgramSpec::Case { name: case } => match find_case(case) {
            Ok(case) => Simulator::new(case.program)
                .with_backend(shared.config.backend)
                .with_metrics(&shared.metrics),
            Err((code, message)) => return Response::Error { code, message },
        },
        ProgramSpec::Lab(spec) => Simulator::new(aid_lab::build(spec).program)
            .with_backend(shared.config.backend)
            .with_metrics(&shared.metrics),
    };
    let extraction = match resolve_extraction(shared, analysis) {
        Ok(extraction) => extraction,
        Err((code, message)) => return Response::Error { code, message },
    };
    let mut store = shared.config.store.clone();
    store.extraction = extraction;
    store.retention = RetentionPolicy {
        max_traces: (retention_traces > 0).then_some(retention_traces as usize),
        max_age: (retention_age != u64::MAX).then_some(retention_age),
    };
    let config = WatchConfig {
        store,
        strategy,
        discovery_seed,
        runs_per_round: runs_per_round.max(1) as usize,
        first_seed,
        prune_quorum: prune_quorum.max(1) as usize,
        max_probe_runs: (max_probe_runs != u64::MAX).then_some(max_probe_runs),
        name,
    };
    let watcher = Watcher::new(config, Arc::new(simulator), shared.engine.handle());
    let id = ctx.next_watch;
    ctx.next_watch += 1;
    ctx.watches.insert(
        id,
        WatchEntry {
            watcher,
            folded: StoreFold::default(),
        },
    );
    shared.counters.watches_subscribed.inc();
    Response::Subscribed { watch: id }
}

fn upload_ack(ctx: &ClientCtx, analyzed: bool) -> Response {
    let stats = ctx.store.stats();
    Response::UploadAck {
        traces: stats.ingest.traces,
        quarantined: stats.ingest.quarantined,
        analyzed,
    }
}

/// Polls one session ticket, freeing its admission slot on any terminal
/// state. A result is delivered exactly once; later polls see `Unknown`.
pub(crate) fn poll_session(
    shared: &ServerShared,
    ctx: &mut ClientCtx,
    session: u32,
) -> SessionState {
    let Some(ticket) = ctx.sessions.get(&session) else {
        return SessionState::Unknown;
    };
    match ticket.try_wait() {
        SessionPoll::Pending => SessionState::Pending,
        SessionPoll::Ready(result) => {
            ctx.sessions.remove(&session);
            shared.counters.sessions_delivered.inc();
            SessionState::Done(result.result)
        }
        // A typed session failure (e.g. a VM trap from an invalid
        // intervention) is reported on the existing wire vocabulary as
        // `Lost`: the client learns the session produced no result, and
        // the server (engine included) keeps serving.
        SessionPoll::Failed(_) | SessionPoll::Lost => {
            ctx.sessions.remove(&session);
            shared.counters.sessions_lost.inc();
            SessionState::Lost
        }
    }
}

/// Looks up one case study by name with the service's typed error.
fn find_case(name: &str) -> Result<aid_cases::CaseStudy, (ErrorCode, String)> {
    all_cases().into_iter().find(|c| c.name == name).ok_or((
        ErrorCode::UnknownCase,
        format!("no case study named '{name}'"),
    ))
}

/// Resolves an upload's declared extraction configuration.
fn resolve_extraction(
    shared: &ServerShared,
    analysis: &AnalysisSpec,
) -> Result<aid_predicates::ExtractionConfig, (ErrorCode, String)> {
    match analysis {
        AnalysisSpec::Default => Ok(shared.config.store.extraction.clone()),
        AnalysisSpec::Case { name } => Ok(find_case(name)?.config),
        AnalysisSpec::Lab(spec) => Ok(aid_lab::build(spec).config),
    }
}

/// Admission control + job construction for one submission.
#[allow(clippy::too_many_arguments)]
fn admit(
    shared: &ServerShared,
    ctx: &mut ClientCtx,
    name: String,
    program: ProgramSpec,
    strategy: Strategy,
    discovery_seed: u64,
    runs_per_round: u32,
    first_seed: u64,
    prune_quorum: u32,
) -> Response {
    let limit = shared.config.max_sessions_per_client;
    if shared.shutdown.load(Relaxed) {
        shared.counters.rejected_engine.inc();
        return Response::Overloaded {
            scope: OverloadScope::Draining,
            in_flight: ctx.sessions.len() as u32,
            limit: limit as u32,
        };
    }
    if ctx.sessions.len() >= limit {
        shared.counters.rejected_client.inc();
        return Response::Overloaded {
            scope: OverloadScope::Client,
            in_flight: ctx.sessions.len() as u32,
            limit: limit as u32,
        };
    }
    let job = match build_job(
        ctx,
        shared,
        name,
        program,
        strategy,
        discovery_seed,
        runs_per_round,
        first_seed,
        prune_quorum,
    ) {
        Ok(job) => job,
        Err((code, message)) => return Response::Error { code, message },
    };
    match ctx.engine.try_submit(job) {
        Ok(ticket) => {
            let id = shared.next_session.fetch_add(1, Relaxed);
            ctx.sessions.insert(id, ticket);
            shared.counters.sessions_accepted.inc();
            Response::Submitted { session: id }
        }
        Err(saturated) => {
            shared.counters.rejected_engine.inc();
            Response::Overloaded {
                scope: if saturated.shutting_down {
                    OverloadScope::Draining
                } else {
                    OverloadScope::Engine
                },
                in_flight: saturated.pending as u32,
                limit: shared.config.engine.max_pending as u32,
            }
        }
    }
}

/// Rebuilds the intervention substrate named by a [`ProgramSpec`] and
/// binds it to the connection's uploaded analysis.
#[allow(clippy::too_many_arguments)]
fn build_job(
    ctx: &mut ClientCtx,
    shared: &ServerShared,
    name: String,
    program: ProgramSpec,
    strategy: Strategy,
    discovery_seed: u64,
    runs_per_round: u32,
    first_seed: u64,
    prune_quorum: u32,
) -> Result<DiscoveryJob, (ErrorCode, String)> {
    let backend = shared.config.backend;
    let options = options_from_wire(prune_quorum);
    let simulator = match &program {
        ProgramSpec::Synth { app_seed } => {
            // The exact oracle knows its ground truth; no upload involved.
            let app = aid_synth::generate(&SynthParams::default(), *app_seed);
            let mut job = DiscoveryJob::oracle(
                name,
                Arc::new(app.dag.clone()),
                app.truth.clone(),
                strategy,
                discovery_seed,
            );
            job.options = options;
            return Ok(job);
        }
        ProgramSpec::Case { name: case } => Simulator::new(find_case(case)?.program)
            .with_backend(backend)
            .with_metrics(&shared.metrics),
        ProgramSpec::Lab(spec) => Simulator::new(aid_lab::build(spec).program)
            .with_backend(backend)
            .with_metrics(&shared.metrics),
    };
    // Catch an upload that was never `FinishUpload`ed: refresh is
    // incremental, so this is cheap when the analysis is already current.
    ctx.store.refresh();
    let Some(snapshot) = ctx.store.snapshot() else {
        return Err((
            ErrorCode::NoAnalysis,
            "no uploaded analysis: upload a corpus with at least one failing trace first".into(),
        ));
    };
    let mut job = snapshot.discovery_job(
        name,
        Arc::new(simulator),
        runs_per_round as usize,
        first_seed,
        strategy,
        discovery_seed,
    );
    job.options = options;
    Ok(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    /// The connection-cap reservation is a single CAS, not the racy
    /// load-then-increment it replaced: hammered from many threads at the
    /// cap, the active count never overshoots, every admit is matched by
    /// a release, and the books balance exactly.
    #[test]
    fn connection_reservation_never_overshoots_under_contention() {
        const CAP: u64 = 4;
        const THREADS: usize = 8;
        const ROUNDS: usize = 2_000;

        let counters = Arc::new(Counters::default());
        let admitted = Arc::new(AtomicU64::new(0));
        let refused = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let counters = Arc::clone(&counters);
                let admitted = Arc::clone(&admitted);
                let refused = Arc::clone(&refused);
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        if counters.try_reserve_connection(CAP) {
                            // The invariant the old load-then-increment
                            // violated: a reserved slot is never one of
                            // more than CAP.
                            let active = counters.active_connections.get();
                            assert!(active <= CAP, "overshoot: {active} > {CAP}");
                            admitted.fetch_add(1, Relaxed);
                            std::thread::yield_now();
                            counters.release_connection();
                        } else {
                            refused.fetch_add(1, Relaxed);
                        }
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("hammer thread panicked");
        }

        assert_eq!(
            admitted.load(Relaxed) + refused.load(Relaxed),
            (THREADS * ROUNDS) as u64
        );
        assert_eq!(counters.active_connections.get(), 0, "every admit released");
        let peak = counters.peak_connections.get();
        assert!((1..=CAP).contains(&peak), "peak {peak} within (0, {CAP}]");
        // Contended enough to mean something: with 8 threads on a cap of
        // 4, at least one reservation must have been refused.
        assert!(refused.load(Relaxed) > 0, "the cap was never contended");
    }

    /// A cap of zero admits nothing — the CAS closure never finds room.
    #[test]
    fn zero_cap_refuses_everything() {
        let counters = Counters::default();
        assert!(!counters.try_reserve_connection(0));
        assert_eq!(counters.peak_connections.get(), 0);
    }
}
