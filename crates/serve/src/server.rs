//! The session server: an acceptor thread, one blocking handler thread per
//! connection, one shared [`Engine`], and a per-connection
//! [`TraceStore`]/analysis.
//!
//! **Admission control.** Two bounds shed load with a typed
//! [`Response::Overloaded`] instead of queueing unboundedly:
//!
//! 1. *per client* — a connection may hold at most
//!    `max_sessions_per_client` undelivered sessions; a result frees its
//!    slot when the client polls it (or cancels).
//! 2. *server-wide* — the engine's `max_pending` bound, enforced through
//!    the non-blocking [`EngineHandle::try_submit`] so a burst of
//!    submissions never blocks connection handler threads.
//!
//! **Drain.** [`ServerHandle::shutdown`] stops the acceptor, closes
//! connections as they go idle (every accepted connection carries a
//! short read timeout, so a silent client cannot wedge the drain), then
//! [`Engine::shutdown`]s — in-flight sessions complete engine-side; new
//! submissions are refused with `Overloaded { scope: Draining }`.

use crate::protocol::{
    options_from_wire, AnalysisSpec, ErrorCode, OverloadScope, ProgramSpec, Request, Response,
    ServerStats, SessionState,
};
use crate::transport::{Deadline, Listener, ACCEPTED_READ_TIMEOUT, MAX_IDLE_READ_TIMEOUT};
use crate::wire::{self, FrameError, PROTOCOL_VERSION};
use aid_cases::all_cases;
use aid_core::Strategy;
use aid_engine::{DiscoveryJob, Engine, EngineConfig, EngineHandle, Session, SessionPoll};
use aid_sim::Simulator;
use aid_store::{RetentionPolicy, StoreConfig, TraceStore};
use aid_synth::SynthParams;
use aid_watch::{WatchConfig, Watcher};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server sizing and policy knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Engine sizing (worker pool, cache, `max_pending` backpressure
    /// bound — the server-wide admission limit).
    pub engine: EngineConfig,
    /// Per-connection trace-store sizing and extraction configuration.
    pub store: StoreConfig,
    /// Undelivered sessions one connection may hold before submissions
    /// are refused with `Overloaded { scope: Client }`.
    pub max_sessions_per_client: usize,
    /// Standing queries one connection may hold open before `Subscribe`
    /// is refused with `Overloaded { scope: Client }` — each watch costs
    /// a windowed trace store and re-runs discovery on its ticks, so the
    /// bound sits well below the session bound.
    pub max_watches_per_client: usize,
    /// Simultaneously open connections before further accepts are
    /// answered with `Error { code: TooManyConnections }` and closed —
    /// each connection costs a handler thread and a trace store, so the
    /// cap must sit in front of them.
    pub max_connections: usize,
    /// Cumulative upload bytes one connection may ingest per upload
    /// (`BeginUpload` resets the budget) before chunks are refused with
    /// `Error { code: UploadTooLarge }`.
    pub max_upload_bytes: u64,
    /// Largest accepted frame payload.
    pub max_frame_len: usize,
    /// Cadence of `Progress` frames while serving a `Stream` request.
    pub stream_poll: Duration,
    /// Server self-identification, echoed in `HelloOk`.
    pub server_name: String,
    /// Execution backend for simulators rebuilt from [`ProgramSpec`]s
    /// (bytecode by default; traces and results are backend-independent,
    /// so this only affects throughput).
    pub backend: aid_sim::Backend,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: EngineConfig::default(),
            store: StoreConfig::default(),
            max_sessions_per_client: 4,
            max_watches_per_client: 2,
            max_connections: 256,
            // Generous next to real corpora (the six case studies encode
            // to ~100 KiB each) while bounding a hostile uploader.
            max_upload_bytes: 64 << 20,
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
            stream_poll: Duration::from_millis(1),
            server_name: "aid-serve".to_string(),
            backend: aid_sim::Backend::default(),
        }
    }
}

/// Lock-free server-side counters (the non-engine half of
/// [`ServerStats`]).
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    connections_refused: AtomicU64,
    active_connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    upload_chunks: AtomicU64,
    traces_ingested: AtomicU64,
    records_quarantined: AtomicU64,
    sessions_accepted: AtomicU64,
    rejected_client: AtomicU64,
    rejected_engine: AtomicU64,
    sessions_cancelled: AtomicU64,
    sessions_delivered: AtomicU64,
    sessions_lost: AtomicU64,
    protocol_errors: AtomicU64,
    store_evicted: AtomicU64,
    store_compactions: AtomicU64,
    view_reprobed: AtomicU64,
    view_skipped: AtomicU64,
    watches_subscribed: AtomicU64,
    watch_events: AtomicU64,
    idle_ticks: AtomicU64,
}

struct ServerShared {
    config: ServeConfig,
    engine: Engine,
    counters: Counters,
    shutdown: AtomicBool,
    next_session: AtomicU32,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerShared {
    fn stats(&self) -> ServerStats {
        let c = &self.counters;
        let e = self.engine.stats();
        ServerStats {
            connections: c.connections.load(Relaxed),
            connections_refused: c.connections_refused.load(Relaxed),
            active_connections: c.active_connections.load(Relaxed),
            frames_in: c.frames_in.load(Relaxed),
            frames_out: c.frames_out.load(Relaxed),
            bytes_in: c.bytes_in.load(Relaxed),
            bytes_out: c.bytes_out.load(Relaxed),
            upload_chunks: c.upload_chunks.load(Relaxed),
            traces_ingested: c.traces_ingested.load(Relaxed),
            records_quarantined: c.records_quarantined.load(Relaxed),
            sessions_accepted: c.sessions_accepted.load(Relaxed),
            rejected_client: c.rejected_client.load(Relaxed),
            rejected_engine: c.rejected_engine.load(Relaxed),
            sessions_cancelled: c.sessions_cancelled.load(Relaxed),
            sessions_delivered: c.sessions_delivered.load(Relaxed),
            sessions_lost: c.sessions_lost.load(Relaxed),
            protocol_errors: c.protocol_errors.load(Relaxed),
            executions: e.executions,
            cache_hits: e.cache_hits,
            cache_misses: e.cache_misses,
            cache_entries: e.cache_entries as u64,
            sessions_completed: e.sessions_completed,
            peak_pending: e.peak_pending,
            store_evicted: c.store_evicted.load(Relaxed),
            store_compactions: c.store_compactions.load(Relaxed),
            view_reprobed: c.view_reprobed.load(Relaxed),
            view_skipped: c.view_skipped.load(Relaxed),
            watches_subscribed: c.watches_subscribed.load(Relaxed),
            watch_events: c.watch_events.load(Relaxed),
            idle_ticks: c.idle_ticks.load(Relaxed),
        }
    }
}

/// Builder entry points for a running server.
pub struct Server;

impl Server {
    /// Starts a server over any [`Listener`]. The returned handle owns the
    /// acceptor thread; dropping it (or calling
    /// [`ServerHandle::shutdown`]) drains the server.
    pub fn start<L: Listener>(listener: L, config: ServeConfig) -> ServerHandle {
        let engine = Engine::new(config.engine);
        let shared = Arc::new(ServerShared {
            config,
            engine,
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU32::new(1),
            conns: Mutex::new(Vec::new()),
        });
        let label = listener.label();
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name(format!("aid-serve-accept {label}"))
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn acceptor thread");
        ServerHandle {
            shared,
            acceptor: Some(acceptor),
        }
    }

    /// Convenience: a server on loopback/LAN TCP. Returns the handle and
    /// the bound address (the real port when `addr` used port 0).
    pub fn start_tcp(
        addr: impl std::net::ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<(ServerHandle, std::net::SocketAddr)> {
        let transport = crate::transport::TcpTransport::bind(addr)?;
        let local = transport.local_addr();
        Ok((Server::start(transport, config), local))
    }

    /// Convenience: an in-process server for deterministic tests. Returns
    /// the handle and a cloneable connector clients dial through.
    pub fn start_in_proc(config: ServeConfig) -> (ServerHandle, crate::transport::InProcConnector) {
        let (listener, connector) = crate::transport::in_proc();
        (Server::start(listener, config), connector)
    }
}

/// A running server. Dropping the handle drains the server (equivalent to
/// [`ServerHandle::shutdown`] with the final stats discarded).
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// A live telemetry snapshot (no client round-trip).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Graceful drain: stops accepting, closes each connection at its
    /// next idle read-timeout tick (a mid-request connection finishes
    /// the request first; a mid-frame stall is the one residual way to
    /// delay the drain), then drains the engine. In-flight sessions
    /// complete; new submissions are refused as
    /// `Overloaded { scope: Draining }`. Returns the final telemetry
    /// snapshot.
    pub fn shutdown(mut self) -> ServerStats {
        self.drain();
        self.shared.stats()
    }

    fn drain(&mut self) {
        self.shared.shutdown.store(true, Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().unwrap());
        for conn in conns {
            let _ = conn.join();
        }
        self.shared.engine.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.drain();
        }
    }
}

fn accept_loop<L: Listener>(listener: L, shared: Arc<ServerShared>) {
    while !shared.shutdown.load(Relaxed) {
        match listener.accept_timeout(Duration::from_millis(2)) {
            Ok(Some(mut conn)) => {
                // The connection cap guards the resources a connection
                // costs *before* any admission check can run (a handler
                // thread, a trace store): refuse with a typed error and
                // hang up rather than spawn.
                let active = shared.counters.active_connections.load(Relaxed);
                if active >= shared.config.max_connections as u64 {
                    shared.counters.connections_refused.fetch_add(1, Relaxed);
                    let _ = send(
                        shared.as_ref(),
                        &mut conn,
                        &Response::Error {
                            code: ErrorCode::TooManyConnections,
                            message: format!(
                                "server is at its connection cap ({})",
                                shared.config.max_connections
                            ),
                        },
                    );
                    continue;
                }
                shared.counters.connections.fetch_add(1, Relaxed);
                shared.counters.active_connections.fetch_add(1, Relaxed);
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("aid-serve-conn".to_string())
                    .spawn(move || {
                        serve_connection(&conn_shared, conn);
                        conn_shared
                            .counters
                            .active_connections
                            .fetch_sub(1, Relaxed);
                    })
                    .expect("spawn connection thread");
                // Reap finished handler threads as we go: a long-lived
                // server must not retain one JoinHandle per connection
                // it has ever served.
                let mut conns = shared.conns.lock().unwrap();
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Ok(None) => {}
            // The listener died (e.g. every in-proc connector dropped):
            // nothing further can arrive.
            Err(_) => break,
        }
    }
}

/// A store's counters already folded into the server-wide picture — the
/// store's own counters are cumulative, so folding must be by delta or a
/// second fold double-counts.
#[derive(Clone, Copy, Default)]
struct StoreFold {
    traces: u64,
    quarantined: u64,
    evicted: u64,
    compactions: u64,
    reprobed: u64,
    skipped: u64,
}

impl StoreFold {
    /// Folds the delta between `stats` and this record into the
    /// server-wide counters, then advances the record.
    fn fold(&mut self, counters: &Counters, stats: &aid_store::StoreStats) {
        let now = StoreFold {
            traces: stats.ingest.traces,
            quarantined: stats.ingest.quarantined,
            evicted: stats.columns.evicted as u64,
            compactions: stats.columns.compactions as u64,
            reprobed: stats.view.predicates_reprobed,
            skipped: stats.view.predicates_skipped,
        };
        counters
            .traces_ingested
            .fetch_add(now.traces - self.traces, Relaxed);
        counters
            .records_quarantined
            .fetch_add(now.quarantined - self.quarantined, Relaxed);
        counters
            .store_evicted
            .fetch_add(now.evicted - self.evicted, Relaxed);
        counters
            .store_compactions
            .fetch_add(now.compactions - self.compactions, Relaxed);
        counters
            .view_reprobed
            .fetch_add(now.reprobed - self.reprobed, Relaxed);
        counters
            .view_skipped
            .fetch_add(now.skipped - self.skipped, Relaxed);
        *self = now;
    }
}

/// One standing query and its fold cursor.
struct WatchEntry {
    watcher: Watcher,
    folded: StoreFold,
}

/// Per-connection state: the client's trace store, its undelivered
/// session tickets, and its standing queries.
struct ClientCtx {
    store: TraceStore,
    sessions: HashMap<u32, Session>,
    watches: HashMap<u32, WatchEntry>,
    next_watch: u32,
    engine: EngineHandle,
    /// Fold cursor for the upload store's counters.
    folded: StoreFold,
    /// Bytes ingested against the current upload's quota (tail appends
    /// count against the same budget).
    upload_bytes: u64,
}

/// What the connection loop should do after a request.
enum Flow {
    Continue,
    Close,
}

fn serve_connection<C: Read + Write + Deadline>(shared: &Arc<ServerShared>, mut conn: C) {
    let mut ctx = ClientCtx {
        store: TraceStore::with_pool(shared.config.store.clone(), shared.engine_pool()),
        sessions: HashMap::new(),
        watches: HashMap::new(),
        next_watch: 1,
        engine: shared.engine.handle(),
        folded: StoreFold::default(),
        upload_bytes: 0,
    };
    let mut idle = ACCEPTED_READ_TIMEOUT;
    loop {
        let (kind, payload) = match wire::read_frame(&mut conn, shared.config.max_frame_len) {
            Ok(Some(frame)) => {
                // Traffic: snap the idle backoff down to the floor so the
                // next drain check after this burst is prompt again.
                if idle != ACCEPTED_READ_TIMEOUT {
                    idle = ACCEPTED_READ_TIMEOUT;
                    if conn.set_read_deadline(Some(idle)).is_err() {
                        break;
                    }
                }
                frame
            }
            // Clean hang-up between frames.
            Ok(None) => break,
            // The accepted connection's read timeout ticked while idle:
            // poll the drain flag so shutdown never hangs on a client
            // that stays connected but silent, then back the timeout off
            // exponentially — an idle connection must not burn a wakeup
            // every 100 ms forever.
            Err(FrameError::IdleTimeout) => {
                shared.counters.idle_ticks.fetch_add(1, Relaxed);
                if shared.shutdown.load(Relaxed) {
                    break;
                }
                if idle < MAX_IDLE_READ_TIMEOUT {
                    idle = (idle * 2).min(MAX_IDLE_READ_TIMEOUT);
                    if conn.set_read_deadline(Some(idle)).is_err() {
                        break;
                    }
                }
                continue;
            }
            Err(FrameError::Wire(e)) => {
                shared.counters.protocol_errors.fetch_add(1, Relaxed);
                let _ = send(
                    shared,
                    &mut conn,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                break;
            }
            // Transport failure (reset, abort): nothing to answer.
            Err(FrameError::Io(_)) => break,
        };
        shared.counters.frames_in.fetch_add(1, Relaxed);
        shared
            .counters
            .bytes_in
            .fetch_add((wire::HEADER_LEN + payload.len()) as u64, Relaxed);
        let request = match Request::decode_payload(kind, &payload) {
            Ok(r) => r,
            Err(e) => {
                shared.counters.protocol_errors.fetch_add(1, Relaxed);
                let _ = send(
                    shared,
                    &mut conn,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                break;
            }
        };
        match handle_request(shared, &mut ctx, &mut conn, request) {
            // During a drain, close at the request boundary too: a
            // client that is never idle for a full read-timeout tick
            // must not be able to hold the drain open indefinitely.
            Ok(Flow::Continue) => {
                if shared.shutdown.load(Relaxed) {
                    break;
                }
            }
            Ok(Flow::Close) => break,
            // The response could not be written; the peer is gone.
            Err(_) => break,
        }
    }
    // Fold what the connection's stores observed before `ctx` drops
    // (undelivered tickets are discarded and the engine runs their
    // sessions to completion internally).
    ctx.folded.fold(&shared.counters, &ctx.store.stats());
    for entry in ctx.watches.values_mut() {
        entry
            .folded
            .fold(&shared.counters, &entry.watcher.store_stats());
    }
}

impl ServerShared {
    fn engine_pool(&self) -> Arc<aid_engine::WorkerPool> {
        self.engine.pool()
    }
}

fn send<C: Write>(shared: &ServerShared, conn: &mut C, response: &Response) -> std::io::Result<()> {
    let frame = response.encode();
    wire::write_frame(conn, &frame)?;
    shared.counters.frames_out.fetch_add(1, Relaxed);
    shared
        .counters
        .bytes_out
        .fetch_add(frame.len() as u64, Relaxed);
    Ok(())
}

fn handle_request<C: Write>(
    shared: &Arc<ServerShared>,
    ctx: &mut ClientCtx,
    conn: &mut C,
    request: Request,
) -> std::io::Result<Flow> {
    match request {
        Request::Hello { client: _ } => {
            send(
                shared,
                conn,
                &Response::HelloOk {
                    version: PROTOCOL_VERSION,
                    server: shared.config.server_name.clone(),
                },
            )?;
        }
        Request::BeginUpload { analysis } => {
            // A fresh store: each upload is its own corpus and analysis,
            // extracted under the declared configuration — an analysis is
            // only comparable to an in-process one run under the same
            // purity markings and safety knobs.
            let extraction = match resolve_extraction(shared, &analysis) {
                Ok(extraction) => extraction,
                Err((code, message)) => {
                    send(shared, conn, &Response::Error { code, message })?;
                    return Ok(Flow::Continue);
                }
            };
            let mut store_config = shared.config.store.clone();
            store_config.extraction = extraction;
            // Fold what the replaced store had ingested, then reset the
            // cursor: the fresh store's counters restart at zero.
            ctx.folded.fold(&shared.counters, &ctx.store.stats());
            ctx.store = TraceStore::with_pool(store_config, shared.engine_pool());
            ctx.folded = StoreFold::default();
            ctx.upload_bytes = 0;
            send(shared, conn, &upload_ack(ctx, false))?;
        }
        Request::UploadChunk { bytes } => {
            // Per-upload byte quota: nothing else bounds how much a
            // client can make the server retain, and sessions-level
            // admission control runs far too late to help.
            if ctx.upload_bytes + bytes.len() as u64 > shared.config.max_upload_bytes {
                send(
                    shared,
                    conn,
                    &Response::Error {
                        code: ErrorCode::UploadTooLarge,
                        message: format!(
                            "upload exceeds the {} byte quota; BeginUpload resets it",
                            shared.config.max_upload_bytes
                        ),
                    },
                )?;
                return Ok(Flow::Continue);
            }
            ctx.upload_bytes += bytes.len() as u64;
            ctx.store.ingest_bytes(&bytes);
            shared.counters.upload_chunks.fetch_add(1, Relaxed);
            send(shared, conn, &upload_ack(ctx, false))?;
        }
        Request::FinishUpload => {
            ctx.store.finish_ingest();
            let analyzed = ctx.store.refresh().is_some();
            // Fold this upload's totals into the server-wide picture at
            // the boundary where they stop changing — by delta, because
            // the decoder's counters are cumulative and a client may run
            // several streams through one store.
            ctx.folded.fold(&shared.counters, &ctx.store.stats());
            send(shared, conn, &upload_ack(ctx, analyzed))?;
        }
        Request::SubmitDiscovery {
            name,
            program,
            strategy,
            discovery_seed,
            runs_per_round,
            first_seed,
            prune_quorum,
        } => {
            let response = admit(
                shared,
                ctx,
                name,
                program,
                strategy,
                discovery_seed,
                runs_per_round,
                first_seed,
                prune_quorum,
            );
            send(shared, conn, &response)?;
        }
        Request::Poll { session } => {
            let state = poll_session(shared, ctx, session);
            send(shared, conn, &Response::Status { session, state })?;
        }
        Request::Stream { session } => {
            // Emit Progress only when the engine-wide counters moved —
            // an unconditional frame per tick would spam ~1000 identical
            // frames/s per streaming client on a long session.
            let mut last = (u64::MAX, u64::MAX, u64::MAX);
            loop {
                let state = poll_session(shared, ctx, session);
                match state {
                    SessionState::Pending => {
                        let e = shared.engine.stats();
                        let now = (e.executions, e.cache_hits, e.sessions_completed);
                        if now != last {
                            last = now;
                            send(
                                shared,
                                conn,
                                &Response::Progress {
                                    session,
                                    executions: e.executions,
                                    cache_hits: e.cache_hits,
                                    sessions_completed: e.sessions_completed,
                                },
                            )?;
                        }
                        std::thread::sleep(shared.config.stream_poll);
                    }
                    terminal => {
                        send(
                            shared,
                            conn,
                            &Response::Status {
                                session,
                                state: terminal,
                            },
                        )?;
                        break;
                    }
                }
            }
        }
        Request::Stats => {
            send(shared, conn, &Response::StatsOk(shared.stats()))?;
        }
        Request::Cancel { session } => {
            let existed = ctx.sessions.remove(&session).is_some();
            if existed {
                shared.counters.sessions_cancelled.fetch_add(1, Relaxed);
            }
            send(shared, conn, &Response::Cancelled { session, existed })?;
        }
        Request::Goodbye => {
            send(shared, conn, &Response::Bye)?;
            return Ok(Flow::Close);
        }
        Request::Subscribe {
            name,
            analysis,
            program,
            strategy,
            discovery_seed,
            runs_per_round,
            first_seed,
            prune_quorum,
            retention_traces,
            retention_age,
            max_probe_runs,
        } => {
            let response = admit_watch(
                shared,
                ctx,
                name,
                &analysis,
                &program,
                strategy,
                discovery_seed,
                runs_per_round,
                first_seed,
                prune_quorum,
                retention_traces,
                retention_age,
                max_probe_runs,
            );
            send(shared, conn, &response)?;
        }
        Request::StreamTail { watch, bytes, fin } => {
            if ctx.upload_bytes + bytes.len() as u64 > shared.config.max_upload_bytes {
                send(
                    shared,
                    conn,
                    &Response::Error {
                        code: ErrorCode::UploadTooLarge,
                        message: format!(
                            "tail exceeds the {} byte quota; BeginUpload resets it",
                            shared.config.max_upload_bytes
                        ),
                    },
                )?;
                return Ok(Flow::Continue);
            }
            let Some(entry) = ctx.watches.get_mut(&watch) else {
                send(
                    shared,
                    conn,
                    &Response::Error {
                        code: ErrorCode::UnknownWatch,
                        message: format!("no standing query with id {watch} on this connection"),
                    },
                )?;
                return Ok(Flow::Continue);
            };
            ctx.upload_bytes += bytes.len() as u64;
            shared.counters.upload_chunks.fetch_add(1, Relaxed);
            entry.watcher.push_bytes(&bytes);
            if fin {
                entry.watcher.finish_tail();
            }
            let response = match entry.watcher.tick() {
                Ok(events) => {
                    shared
                        .counters
                        .watch_events
                        .fetch_add(events.len() as u64, Relaxed);
                    entry
                        .folded
                        .fold(&shared.counters, &entry.watcher.store_stats());
                    Response::WatchEvents {
                        watch,
                        traces: entry.watcher.store_stats().ingest.traces,
                        events,
                    }
                }
                Err(e) => Response::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                },
            };
            send(shared, conn, &response)?;
        }
        Request::Unsubscribe { watch } => {
            let existed = match ctx.watches.remove(&watch) {
                Some(mut entry) => {
                    entry
                        .folded
                        .fold(&shared.counters, &entry.watcher.store_stats());
                    true
                }
                None => false,
            };
            send(shared, conn, &Response::Unsubscribed { watch, existed })?;
        }
    }
    Ok(Flow::Continue)
}

/// Admission control + watcher construction for one standing query.
#[allow(clippy::too_many_arguments)]
fn admit_watch(
    shared: &ServerShared,
    ctx: &mut ClientCtx,
    name: String,
    analysis: &AnalysisSpec,
    program: &ProgramSpec,
    strategy: Strategy,
    discovery_seed: u64,
    runs_per_round: u32,
    first_seed: u64,
    prune_quorum: u32,
    retention_traces: u64,
    retention_age: u64,
    max_probe_runs: u64,
) -> Response {
    let limit = shared.config.max_watches_per_client;
    if shared.shutdown.load(Relaxed) {
        shared.counters.rejected_engine.fetch_add(1, Relaxed);
        return Response::Overloaded {
            scope: OverloadScope::Draining,
            in_flight: ctx.watches.len() as u32,
            limit: limit as u32,
        };
    }
    if ctx.watches.len() >= limit {
        shared.counters.rejected_client.fetch_add(1, Relaxed);
        return Response::Overloaded {
            scope: OverloadScope::Client,
            in_flight: ctx.watches.len() as u32,
            limit: limit as u32,
        };
    }
    let simulator = match program {
        ProgramSpec::Synth { .. } => {
            return Response::Error {
                code: ErrorCode::Unwatchable,
                message: "the synthetic oracle consumes no trace stream; nothing to watch".into(),
            }
        }
        ProgramSpec::Case { name: case } => match find_case(case) {
            Ok(case) => Simulator::new(case.program).with_backend(shared.config.backend),
            Err((code, message)) => return Response::Error { code, message },
        },
        ProgramSpec::Lab(spec) => {
            Simulator::new(aid_lab::build(spec).program).with_backend(shared.config.backend)
        }
    };
    let extraction = match resolve_extraction(shared, analysis) {
        Ok(extraction) => extraction,
        Err((code, message)) => return Response::Error { code, message },
    };
    let mut store = shared.config.store.clone();
    store.extraction = extraction;
    store.retention = RetentionPolicy {
        max_traces: (retention_traces > 0).then_some(retention_traces as usize),
        max_age: (retention_age != u64::MAX).then_some(retention_age),
    };
    let config = WatchConfig {
        store,
        strategy,
        discovery_seed,
        runs_per_round: runs_per_round.max(1) as usize,
        first_seed,
        prune_quorum: prune_quorum.max(1) as usize,
        max_probe_runs: (max_probe_runs != u64::MAX).then_some(max_probe_runs),
        name,
    };
    let watcher = Watcher::new(config, Arc::new(simulator), shared.engine.handle());
    let id = ctx.next_watch;
    ctx.next_watch += 1;
    ctx.watches.insert(
        id,
        WatchEntry {
            watcher,
            folded: StoreFold::default(),
        },
    );
    shared.counters.watches_subscribed.fetch_add(1, Relaxed);
    Response::Subscribed { watch: id }
}

fn upload_ack(ctx: &ClientCtx, analyzed: bool) -> Response {
    let stats = ctx.store.stats();
    Response::UploadAck {
        traces: stats.ingest.traces,
        quarantined: stats.ingest.quarantined,
        analyzed,
    }
}

/// Polls one session ticket, freeing its admission slot on any terminal
/// state. A result is delivered exactly once; later polls see `Unknown`.
fn poll_session(shared: &ServerShared, ctx: &mut ClientCtx, session: u32) -> SessionState {
    let Some(ticket) = ctx.sessions.get(&session) else {
        return SessionState::Unknown;
    };
    match ticket.try_wait() {
        SessionPoll::Pending => SessionState::Pending,
        SessionPoll::Ready(result) => {
            ctx.sessions.remove(&session);
            shared.counters.sessions_delivered.fetch_add(1, Relaxed);
            SessionState::Done(result.result)
        }
        // A typed session failure (e.g. a VM trap from an invalid
        // intervention) is reported on the existing wire vocabulary as
        // `Lost`: the client learns the session produced no result, and
        // the server (engine included) keeps serving.
        SessionPoll::Failed(_) | SessionPoll::Lost => {
            ctx.sessions.remove(&session);
            shared.counters.sessions_lost.fetch_add(1, Relaxed);
            SessionState::Lost
        }
    }
}

/// Looks up one case study by name with the service's typed error.
fn find_case(name: &str) -> Result<aid_cases::CaseStudy, (ErrorCode, String)> {
    all_cases().into_iter().find(|c| c.name == name).ok_or((
        ErrorCode::UnknownCase,
        format!("no case study named '{name}'"),
    ))
}

/// Resolves an upload's declared extraction configuration.
fn resolve_extraction(
    shared: &ServerShared,
    analysis: &AnalysisSpec,
) -> Result<aid_predicates::ExtractionConfig, (ErrorCode, String)> {
    match analysis {
        AnalysisSpec::Default => Ok(shared.config.store.extraction.clone()),
        AnalysisSpec::Case { name } => Ok(find_case(name)?.config),
        AnalysisSpec::Lab(spec) => Ok(aid_lab::build(spec).config),
    }
}

/// Admission control + job construction for one submission.
#[allow(clippy::too_many_arguments)]
fn admit(
    shared: &ServerShared,
    ctx: &mut ClientCtx,
    name: String,
    program: ProgramSpec,
    strategy: Strategy,
    discovery_seed: u64,
    runs_per_round: u32,
    first_seed: u64,
    prune_quorum: u32,
) -> Response {
    let limit = shared.config.max_sessions_per_client;
    if shared.shutdown.load(Relaxed) {
        shared.counters.rejected_engine.fetch_add(1, Relaxed);
        return Response::Overloaded {
            scope: OverloadScope::Draining,
            in_flight: ctx.sessions.len() as u32,
            limit: limit as u32,
        };
    }
    if ctx.sessions.len() >= limit {
        shared.counters.rejected_client.fetch_add(1, Relaxed);
        return Response::Overloaded {
            scope: OverloadScope::Client,
            in_flight: ctx.sessions.len() as u32,
            limit: limit as u32,
        };
    }
    let job = match build_job(
        ctx,
        shared.config.backend,
        name,
        program,
        strategy,
        discovery_seed,
        runs_per_round,
        first_seed,
        prune_quorum,
    ) {
        Ok(job) => job,
        Err((code, message)) => return Response::Error { code, message },
    };
    match ctx.engine.try_submit(job) {
        Ok(ticket) => {
            let id = shared.next_session.fetch_add(1, Relaxed);
            ctx.sessions.insert(id, ticket);
            shared.counters.sessions_accepted.fetch_add(1, Relaxed);
            Response::Submitted { session: id }
        }
        Err(saturated) => {
            shared.counters.rejected_engine.fetch_add(1, Relaxed);
            Response::Overloaded {
                scope: if saturated.shutting_down {
                    OverloadScope::Draining
                } else {
                    OverloadScope::Engine
                },
                in_flight: saturated.pending as u32,
                limit: shared.config.engine.max_pending as u32,
            }
        }
    }
}

/// Rebuilds the intervention substrate named by a [`ProgramSpec`] and
/// binds it to the connection's uploaded analysis.
#[allow(clippy::too_many_arguments)]
fn build_job(
    ctx: &mut ClientCtx,
    backend: aid_sim::Backend,
    name: String,
    program: ProgramSpec,
    strategy: Strategy,
    discovery_seed: u64,
    runs_per_round: u32,
    first_seed: u64,
    prune_quorum: u32,
) -> Result<DiscoveryJob, (ErrorCode, String)> {
    let options = options_from_wire(prune_quorum);
    let simulator = match &program {
        ProgramSpec::Synth { app_seed } => {
            // The exact oracle knows its ground truth; no upload involved.
            let app = aid_synth::generate(&SynthParams::default(), *app_seed);
            let mut job = DiscoveryJob::oracle(
                name,
                Arc::new(app.dag.clone()),
                app.truth.clone(),
                strategy,
                discovery_seed,
            );
            job.options = options;
            return Ok(job);
        }
        ProgramSpec::Case { name: case } => {
            Simulator::new(find_case(case)?.program).with_backend(backend)
        }
        ProgramSpec::Lab(spec) => {
            Simulator::new(aid_lab::build(spec).program).with_backend(backend)
        }
    };
    // Catch an upload that was never `FinishUpload`ed: refresh is
    // incremental, so this is cheap when the analysis is already current.
    ctx.store.refresh();
    let Some(snapshot) = ctx.store.snapshot() else {
        return Err((
            ErrorCode::NoAnalysis,
            "no uploaded analysis: upload a corpus with at least one failing trace first".into(),
        ));
    };
    let mut job = snapshot.discovery_job(
        name,
        Arc::new(simulator),
        runs_per_round as usize,
        first_seed,
        strategy,
        discovery_seed,
    );
    job.options = options;
    Ok(job)
}
