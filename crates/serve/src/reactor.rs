//! The readiness-driven reactor: one thread multiplexing every
//! connection over `poll(2)` (TCP) and a [`ReadySignal`] (in-proc
//! duplex, handler completions), driving per-connection state machines.
//!
//! Each connection is a small state machine:
//!
//! | phase       | waiting on                  | transition                          |
//! |-------------|-----------------------------|-------------------------------------|
//! | `Reading`   | readiness (fd or waker)     | full frame decoded → `Handling`     |
//! | `Handling`  | handler-pool completion     | responses queued → `Reading`/stream |
//! | `Streaming` | `stream_poll` timer         | terminal `Status` → `Reading`       |
//!
//! The reactor never blocks on request work: decoded requests ship (with
//! the connection's [`ClientCtx`], by move) to a handler pool, because a
//! request may legitimately park — a watch tick runs discovery probes to
//! completion against the engine. Streams cost no handler thread at all:
//! the reactor polls the session ticket inline on its timer tick, which
//! is also where the drain flag is checked — a streaming client can no
//! longer hold `shutdown()` open until its session terminates.
//!
//! An idle connection costs a registered fd or waker and nothing else: no
//! thread, no timer, zero wakeups between frames (`handler_dispatches`
//! in the server stats is the observable form of that claim). When every
//! event source is signal-backed (the hermetic in-proc case) the reactor
//! parks on the signal's condvar and wakes only on real events; with fds
//! in play it parks in `poll(2)` with the park capped at
//! [`FD_POLL_CAP`], since the signal cannot interrupt a `poll(2)` sleep.

use crate::protocol::{ErrorCode, Request, Response, SessionState};
use crate::server::{handle_request, poll_session, After, ClientCtx, ServerShared};
use crate::transport::{EventConn, Listener, Readiness, ReadySignal};
use crate::wire::{self, FrameAccum, WireError};
use crossbeam::channel;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token the listener registers under.
const LISTENER_TOKEN: usize = 0;
/// Token handler completions and external wakeups (drain) notify.
pub(crate) const WAKE_TOKEN: usize = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: usize = 2;

/// Longest `poll(2)` park while fds are in the watch set: completions
/// and the drain flag arrive via the signal, which cannot interrupt
/// `poll(2)`, so they are observed with at most this staleness.
const FD_POLL_CAP: Duration = Duration::from_millis(5);
/// Longest signal park with no fds and no armed timers — a pure safety
/// net; every real event notifies the signal and wakes the park early.
const IDLE_PARK_CAP: Duration = Duration::from_millis(250);

#[cfg(unix)]
mod sys {
    //! Minimal `poll(2)` binding. std already links libc; declaring the
    //! one symbol we need keeps the crate dependency-free offline.
    use std::os::raw::{c_int, c_ulong};

    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Polls `fds` for up to `timeout_ms`; returns the ready count (0 on
    /// timeout, negative on error — the caller treats both as "nothing").
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        if fds.is_empty() {
            return 0;
        }
        unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) }
    }
}

/// A request in flight to the handler pool, carrying the connection's
/// context by move — the reactor holds no reference to it meanwhile.
struct HandlerJob {
    token: usize,
    request: Request,
    ctx: ClientCtx,
    /// Dispatch instant, for the queue-wait and whole-frame histograms.
    queued: Instant,
}

/// A finished request: the context comes back with the responses.
struct HandlerDone {
    token: usize,
    ctx: ClientCtx,
    responses: Vec<Response>,
    after: After,
    /// The job's dispatch instant, carried through so the reactor can
    /// close the `serve.frame_us` measurement when it queues the
    /// responses for write.
    dispatched: Instant,
}

/// Where a connection's state machine currently is.
#[derive(Clone, Copy)]
enum Phase {
    /// Accumulating request bytes; the ctx is resident.
    Reading,
    /// A request (and the ctx) is out at the handler pool.
    Handling,
    /// Timer-armed `Stream` continuation; the ctx is resident.
    Streaming {
        session: u32,
        /// Last emitted (executions, cache_hits, sessions_completed) —
        /// `Progress` is only sent when these moved.
        last: (u64, u64, u64),
        next_tick: Instant,
    },
}

struct Conn<C: EventConn> {
    io: C,
    source: Readiness,
    accum: FrameAccum,
    /// Decoded requests not yet dispatched (clients may pipeline).
    pending: VecDeque<Request>,
    /// Resident except while a request is at the handler pool.
    ctx: Option<ClientCtx>,
    phase: Phase,
    outbuf: Vec<u8>,
    out_pos: usize,
    read_closed: bool,
    close_after_flush: bool,
    dead: bool,
}

impl<C: EventConn> Conn<C> {
    fn flushed(&self) -> bool {
        self.out_pos >= self.outbuf.len()
    }
}

/// Runs the server: accept, read, dispatch, stream, flush — one thread,
/// every connection. Returns when the drain flag is up and every
/// connection has retired.
pub(crate) fn reactor_loop<L>(listener: L, shared: Arc<ServerShared>, signal: Arc<ReadySignal>)
where
    L: Listener,
    L::Conn: EventConn,
{
    let (job_tx, job_rx) = channel::unbounded::<HandlerJob>();
    let (done_tx, done_rx) = channel::unbounded::<HandlerDone>();
    let mut handlers = Vec::new();
    for i in 0..shared.handler_threads() {
        let job_rx = job_rx.clone();
        let done_tx = done_tx.clone();
        let shared = Arc::clone(&shared);
        let signal = Arc::clone(&signal);
        handlers.push(
            std::thread::Builder::new()
                .name(format!("aid-serve-handler-{i}"))
                .spawn(move || {
                    while let Ok(HandlerJob {
                        token,
                        request,
                        mut ctx,
                        queued,
                    }) = job_rx.recv()
                    {
                        shared
                            .timings
                            .handler_queue_wait
                            .record_duration(queued.elapsed());
                        let handling = Instant::now();
                        let (responses, after) = handle_request(&shared, &mut ctx, request);
                        shared
                            .timings
                            .handler_handle
                            .record_duration(handling.elapsed());
                        if done_tx
                            .send(HandlerDone {
                                token,
                                ctx,
                                responses,
                                after,
                                dispatched: queued,
                            })
                            .is_err()
                        {
                            break;
                        }
                        signal.notify(WAKE_TOKEN);
                    }
                })
                .expect("spawn handler thread"),
        );
    }
    drop(job_rx);
    drop(done_tx);

    let listener_source = listener.register(&signal, LISTENER_TOKEN);
    let mut conns: HashMap<usize, Conn<L::Conn>> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut listener_alive = true;
    let mut scratch = vec![0u8; 16 * 1024];
    // Start of the current wakeup, for the reactor dwell histogram.
    let mut woke = Instant::now();

    loop {
        let shutting_down = shared.shutdown.load(Relaxed);

        // Handler completions: responses out, context back, next phase.
        while let Ok(done) = done_rx.try_recv() {
            let Some(conn) = conns.get_mut(&done.token) else {
                continue;
            };
            conn.ctx = Some(done.ctx);
            for response in &done.responses {
                queue_response(&shared, conn, response);
            }
            // Frame turnaround closes here: dispatch to responses queued.
            shared
                .timings
                .frame
                .record_duration(done.dispatched.elapsed());
            conn.phase = match done.after {
                After::Continue => Phase::Reading,
                After::Close => {
                    conn.close_after_flush = true;
                    Phase::Reading
                }
                After::Stream { session } => Phase::Streaming {
                    session,
                    last: (u64::MAX, u64::MAX, u64::MAX),
                    next_tick: Instant::now(),
                },
            };
        }

        // Drain: close everything not waiting on a handler. Streams get a
        // terminal typed error this tick — the in-flight session keeps
        // running engine-side, but the connection no longer holds the
        // drain open. Undispatched pipelined requests are discarded, the
        // same boundary the thread-per-connection loop closed at.
        if shutting_down {
            for conn in conns.values_mut() {
                if let Phase::Streaming { .. } = conn.phase {
                    queue_response(
                        &shared,
                        conn,
                        &Response::Error {
                            code: ErrorCode::Draining,
                            message: "server is draining; stream closed".into(),
                        },
                    );
                    conn.phase = Phase::Reading;
                }
                if !matches!(conn.phase, Phase::Handling) {
                    conn.pending.clear();
                    conn.close_after_flush = true;
                }
            }
        }

        // Armed stream timers that came due.
        let now = Instant::now();
        for conn in conns.values_mut() {
            stream_tick(&shared, conn, now);
        }

        // Dispatch: one request per connection at a time (responses stay
        // in request order); further pipelined frames wait in `pending`.
        for (token, conn) in conns.iter_mut() {
            if !matches!(conn.phase, Phase::Reading) || conn.close_after_flush || conn.dead {
                continue;
            }
            if let Some(request) = conn.pending.pop_front() {
                let ctx = conn.ctx.take().expect("reading phase holds the ctx");
                conn.phase = Phase::Handling;
                shared.counters.handler_dispatches.inc();
                job_tx
                    .send(HandlerJob {
                        token: *token,
                        request,
                        ctx,
                        queued: Instant::now(),
                    })
                    .expect("handler pool outlives the reactor");
            }
        }

        // Flush, then retire connections that are done. A connection at
        // the handler pool never retires — its ctx must come home first.
        for conn in conns.values_mut() {
            flush(conn);
        }
        conns.retain(|_, conn| {
            if matches!(conn.phase, Phase::Handling) {
                return true;
            }
            let retire = conn.dead
                || (conn.close_after_flush && conn.flushed())
                || (conn.read_closed
                    && conn.flushed()
                    && conn.pending.is_empty()
                    && matches!(conn.phase, Phase::Reading));
            if retire {
                if let Some(mut ctx) = conn.ctx.take() {
                    ctx.fold_final(&shared);
                }
                shared.counters.release_connection();
            }
            !retire
        });

        if shutting_down && conns.is_empty() {
            break;
        }

        // Park until something is ready (or the next stream tick). The
        // dwell histogram covers wake-to-park: everything this wakeup
        // spent draining, dispatching, flushing and retiring.
        shared.timings.reactor_dwell.record_duration(woke.elapsed());
        let timeout = park_timeout(&listener_source, &conns, now);
        let ready = wait_for_events(&signal, &listener_source, &mut conns, timeout);
        woke = Instant::now();

        // Accept — readiness-driven where the listener supports it,
        // speculative for `Poll` fallback listeners.
        if listener_alive
            && !shutting_down
            && (matches!(listener_source, Readiness::Poll) || ready.contains(&LISTENER_TOKEN))
        {
            listener_alive = accept_ready(&listener, &shared, &signal, &mut conns, &mut next_token);
        }

        // Read every connection that announced bytes (or might have any,
        // for `Poll` fallback sources).
        for (token, conn) in conns.iter_mut() {
            if matches!(conn.source, Readiness::Poll) || ready.contains(token) {
                read_conn(&shared, conn, &mut scratch);
            }
        }
    }

    drop(job_tx);
    for handler in handlers {
        let _ = handler.join();
    }
}

/// How long the reactor may park before something it must do on a clock
/// (stream ticks, speculative `Poll` reads) comes due.
fn park_timeout<C: EventConn>(
    listener_source: &Readiness,
    conns: &HashMap<usize, Conn<C>>,
    now: Instant,
) -> Duration {
    let mut timeout = IDLE_PARK_CAP;
    if matches!(listener_source, Readiness::Poll)
        || conns.values().any(|c| matches!(c.source, Readiness::Poll))
    {
        timeout = timeout.min(FD_POLL_CAP);
    }
    for conn in conns.values() {
        if let Phase::Streaming { next_tick, .. } = conn.phase {
            timeout = timeout.min(next_tick.saturating_duration_since(now));
        }
    }
    timeout
}

/// Parks until at least one event source fires (or `timeout` elapses) and
/// returns the ready tokens. With fds in the set this is `poll(2)` plus a
/// nonblocking signal drain; with none it is a pure condvar park on the
/// signal — zero polling for the hermetic in-proc transport.
fn wait_for_events<C: EventConn>(
    signal: &Arc<ReadySignal>,
    listener_source: &Readiness,
    conns: &mut HashMap<usize, Conn<C>>,
    timeout: Duration,
) -> Vec<usize> {
    #[cfg(unix)]
    {
        let mut fds: Vec<sys::PollFd> = Vec::new();
        let mut tokens: Vec<usize> = Vec::new();
        if let Readiness::Fd(fd) = *listener_source {
            fds.push(sys::PollFd {
                fd,
                events: sys::POLLIN,
                revents: 0,
            });
            tokens.push(LISTENER_TOKEN);
        }
        for (token, conn) in conns.iter() {
            if let Readiness::Fd(fd) = conn.source {
                let mut events = sys::POLLIN;
                if !conn.flushed() {
                    events |= sys::POLLOUT;
                }
                fds.push(sys::PollFd {
                    fd,
                    events,
                    revents: 0,
                });
                tokens.push(*token);
            }
        }
        if !fds.is_empty() {
            let mut ready = signal.drain();
            let park = if ready.is_empty() {
                timeout.min(FD_POLL_CAP).as_millis() as i32
            } else {
                0
            };
            if sys::poll_fds(&mut fds, park) > 0 {
                for (pollfd, token) in fds.iter().zip(&tokens) {
                    if pollfd.revents != 0 {
                        ready.push(*token);
                    }
                }
            }
            // Events that landed while we were inside poll(2).
            ready.extend(signal.drain());
            return ready;
        }
    }
    signal.drain_timeout(timeout)
}

fn accept_ready<L>(
    listener: &L,
    shared: &Arc<ServerShared>,
    signal: &Arc<ReadySignal>,
    conns: &mut HashMap<usize, Conn<L::Conn>>,
    next_token: &mut usize,
) -> bool
where
    L: Listener,
    L::Conn: EventConn,
{
    loop {
        match listener.accept_timeout(Duration::ZERO) {
            Ok(Some(mut io)) => {
                // CAS reservation: the slot is claimed (or refused) in one
                // atomic step, so concurrent accept paths cannot over-admit
                // past the cap.
                if !shared
                    .counters
                    .try_reserve_connection(shared.config.max_connections as u64)
                {
                    shared.counters.connections_refused.inc();
                    let refusal = Response::Error {
                        code: ErrorCode::TooManyConnections,
                        message: format!(
                            "server is at its connection cap ({})",
                            shared.config.max_connections
                        ),
                    }
                    .encode();
                    // Still in blocking mode — write the refusal directly.
                    if wire::write_frame(&mut io, &refusal).is_ok() {
                        shared.counters.frames_out.inc();
                        shared.counters.bytes_out.add(refusal.len() as u64);
                    }
                    continue;
                }
                shared.counters.connections.inc();
                let token = *next_token;
                *next_token += 1;
                let source = match io
                    .set_event_mode()
                    .and_then(|()| io.register(signal, token))
                {
                    Ok(source) => source,
                    Err(_) => {
                        shared.counters.release_connection();
                        continue;
                    }
                };
                conns.insert(
                    token,
                    Conn {
                        io,
                        source,
                        accum: FrameAccum::new(shared.config.max_frame_len),
                        pending: VecDeque::new(),
                        ctx: Some(ClientCtx::new(shared)),
                        phase: Phase::Reading,
                        outbuf: Vec::new(),
                        out_pos: 0,
                        read_closed: false,
                        close_after_flush: false,
                        dead: false,
                    },
                );
            }
            Ok(None) => return true,
            // The listener died (e.g. every in-proc connector dropped):
            // nothing further can arrive; keep serving what is open.
            Err(_) => return false,
        }
    }
}

/// Drains readable bytes into the accumulator and decodes full frames
/// into the pending queue. Protocol violations answer with a typed
/// `Malformed` error and close; EOF mid-frame is a hangup, not an error.
fn read_conn<C: EventConn>(shared: &Arc<ServerShared>, conn: &mut Conn<C>, scratch: &mut [u8]) {
    if conn.dead || conn.read_closed {
        return;
    }
    loop {
        match conn.io.read(scratch) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => conn.accum.extend(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    loop {
        match conn.accum.next_frame() {
            Ok(Some((kind, payload))) => {
                shared.counters.frames_in.inc();
                shared
                    .counters
                    .bytes_in
                    .add((wire::HEADER_LEN + payload.len()) as u64);
                match Request::decode_payload(kind, &payload) {
                    Ok(request) => conn.pending.push_back(request),
                    Err(e) => return protocol_error(shared, conn, e),
                }
            }
            Ok(None) => break,
            Err(e) => return protocol_error(shared, conn, e),
        }
    }
}

fn protocol_error<C: EventConn>(shared: &Arc<ServerShared>, conn: &mut Conn<C>, e: WireError) {
    shared.counters.protocol_errors.inc();
    queue_response(
        shared,
        conn,
        &Response::Error {
            code: ErrorCode::Malformed,
            message: e.to_string(),
        },
    );
    // Inside a corrupt byte stream frame boundaries are untrustworthy:
    // drop what was queued and hang up after the error flushes.
    conn.pending.clear();
    conn.close_after_flush = true;
}

/// Advances one connection's streaming continuation if its timer is due.
fn stream_tick<C: EventConn>(shared: &Arc<ServerShared>, conn: &mut Conn<C>, now: Instant) {
    let Phase::Streaming {
        session,
        last,
        next_tick,
    } = conn.phase
    else {
        return;
    };
    if now < next_tick || conn.dead {
        return;
    }
    let ctx = conn.ctx.as_mut().expect("streaming phase holds the ctx");
    match poll_session(shared, ctx, session) {
        SessionState::Pending => {
            // Emit Progress only when the engine-wide counters moved — an
            // unconditional frame per tick would spam ~1000 identical
            // frames/s per streaming client on a long session.
            let e = shared.engine.stats();
            let counters = (e.executions, e.cache_hits, e.sessions_completed);
            if counters != last {
                queue_response(
                    shared,
                    conn,
                    &Response::Progress {
                        session,
                        executions: e.executions,
                        cache_hits: e.cache_hits,
                        sessions_completed: e.sessions_completed,
                    },
                );
            }
            conn.phase = Phase::Streaming {
                session,
                last: counters,
                next_tick: now + shared.config.stream_poll,
            };
        }
        terminal => {
            queue_response(
                shared,
                conn,
                &Response::Status {
                    session,
                    state: terminal,
                },
            );
            conn.phase = Phase::Reading;
        }
    }
}

fn queue_response<C: EventConn>(
    shared: &Arc<ServerShared>,
    conn: &mut Conn<C>,
    response: &Response,
) {
    let frame = response.encode();
    shared.counters.frames_out.inc();
    shared.counters.bytes_out.add(frame.len() as u64);
    conn.outbuf.extend_from_slice(&frame);
}

/// Writes as much queued output as the transport accepts right now. A
/// partial write keeps its place; the fd stays armed for `POLLOUT`.
fn flush<C: EventConn>(conn: &mut Conn<C>) {
    if conn.dead {
        return;
    }
    while conn.out_pos < conn.outbuf.len() {
        match conn.io.write(&conn.outbuf[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.outbuf.clear();
    conn.out_pos = 0;
}
