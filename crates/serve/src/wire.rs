//! Low-level wire primitives: the frame header, a bounds-checked cursor,
//! and blocking frame I/O over any byte stream.
//!
//! Every frame is `magic(4) · version(1) · kind(1) · payload_len(4, LE) ·
//! payload`. Writers go through the [`bytes::BufMut`] shim; readers go
//! through [`Reader`], a cursor whose every accessor is bounds-checked and
//! returns a typed [`WireError`] — decoding hostile or truncated bytes can
//! fail but never panic, a property `tests/frame_roundtrip.rs` fuzzes.

use bytes::BufMut;
use std::io;

/// Frame magic: the first four bytes of every AID-serve frame.
pub const MAGIC: [u8; 4] = *b"AIDS";

/// Current protocol version, carried in every frame header.
pub const PROTOCOL_VERSION: u8 = 1;

/// Bytes in a frame header (`magic · version · kind · payload_len`).
pub const HEADER_LEN: usize = 10;

/// Default cap on a single frame's payload. Uploads are chunked well below
/// this; anything larger is a protocol violation, not a bigger buffer.
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 << 20;

/// A typed wire-format violation. `Truncated` is distinguished from the
/// other kinds so stream consumers can tell "wait for more bytes" from
/// "this peer is speaking garbage".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value (or frame) was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes it had.
        available: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's version byte is not [`PROTOCOL_VERSION`].
    UnsupportedVersion(u8),
    /// An enum tag (frame kind, program-spec variant, …) is out of range.
    UnknownTag {
        /// Which enum the tag selects.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A value parsed but is out of its domain (e.g. a bool that is 2).
    InvalidValue(&'static str),
    /// A payload decoded completely but left bytes over.
    TrailingBytes {
        /// How many bytes were left.
        extra: usize,
    },
    /// The header announces a payload larger than the configured cap.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// The cap in force.
        max: usize,
    },
    /// A string field is not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated: needed {needed} bytes, had {available}")
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::InvalidValue(what) => write!(f, "invalid {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap {max}")
            }
            WireError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked read cursor over a byte slice.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a strict boolean (`0` or `1`; anything else is an error, so a
    /// flipped bit cannot smuggle in an unintended meaning).
    pub fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidValue(what)),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }

    /// Asserts the payload was consumed exactly.
    pub fn expect_empty(&self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Assembles a complete frame around an encoded payload.
pub fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.put_slice(&MAGIC);
    out.put_u8(PROTOCOL_VERSION);
    out.put_u8(kind);
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
    out
}

/// Splits one frame off the front of `buf`: validates the header, bounds
/// the payload by `max_payload`, and returns `(kind, payload, consumed)`.
pub fn split_frame(buf: &[u8], max_payload: usize) -> Result<(u8, &[u8], usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            available: buf.len(),
        });
    }
    if buf[..4] != MAGIC {
        return Err(WireError::BadMagic(buf[..4].try_into().expect("4")));
    }
    if buf[4] != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion(buf[4]));
    }
    let kind = buf[5];
    let len = u32::from_le_bytes(buf[6..10].try_into().expect("4")) as usize;
    if len > max_payload {
        return Err(WireError::FrameTooLarge {
            len,
            max: max_payload,
        });
    }
    if buf.len() < HEADER_LEN + len {
        return Err(WireError::Truncated {
            needed: HEADER_LEN + len,
            available: buf.len(),
        });
    }
    Ok((kind, &buf[HEADER_LEN..HEADER_LEN + len], HEADER_LEN + len))
}

/// An accumulating, resumable frame decoder for nonblocking streams.
///
/// The reactor's per-connection state machine feeds whatever bytes a
/// readiness event delivered — a single byte, half a header, three frames
/// and a partial fourth — and pulls complete frames out as they close.
/// Built directly on [`split_frame`], so framing semantics (magic,
/// version, payload cap) are byte-for-byte the semantics of the blocking
/// [`read_frame`] path; `Truncated` means "wait for the next readiness
/// event", every other [`WireError`] means the peer is speaking garbage.
///
/// Consumed bytes are dropped lazily: the cursor advances per frame and
/// the buffer compacts only once the consumed prefix dominates, keeping
/// per-event work amortized O(bytes) even when thousands of tiny frames
/// arrive in one burst.
#[derive(Debug)]
pub struct FrameAccum {
    buf: Vec<u8>,
    /// Bytes of `buf` already returned as frames.
    consumed: usize,
    max_payload: usize,
}

impl FrameAccum {
    /// An empty accumulator enforcing the given payload cap.
    pub fn new(max_payload: usize) -> FrameAccum {
        FrameAccum {
            buf: Vec::new(),
            consumed: 0,
            max_payload,
        }
    }

    /// Appends bytes delivered by a readiness event.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame (a nonzero value at
    /// EOF means the peer hung up mid-frame).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Pops the next complete frame, if one has fully arrived.
    ///
    /// `Ok(None)` means "incomplete — feed more bytes"; an `Err` is a
    /// protocol violation and the connection should be closed after a
    /// typed reply (no resynchronization is attempted: inside a corrupt
    /// byte stream, frame boundaries are no longer trustworthy).
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, WireError> {
        match split_frame(&self.buf[self.consumed..], self.max_payload) {
            Ok((kind, payload, used)) => {
                let frame = (kind, payload.to_vec());
                self.consumed += used;
                // Compact once the dead prefix dominates the live bytes,
                // so long-lived connections don't grow without bound while
                // staying O(1) amortized per frame.
                if self.consumed > 4096 && self.consumed * 2 >= self.buf.len() {
                    self.buf.drain(..self.consumed);
                    self.consumed = 0;
                }
                Ok(Some(frame))
            }
            Err(WireError::Truncated { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// A framing failure while reading from a stream: either the transport
/// failed, the peer sent bytes that violate the wire format, or a timed
/// read expired while the stream was idle.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The bytes violate the wire format.
    Wire(WireError),
    /// A read timeout expired at a frame boundary (no bytes of the next
    /// frame had arrived). Not an error condition: servers use timed
    /// reads to poll their shutdown flag between requests.
    IdleTimeout,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Wire(e) => write!(f, "protocol error: {e}"),
            FrameError::IdleTimeout => write!(f, "read timed out between frames"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Whether an I/O error is a timed read expiring (platforms report
/// socket read timeouts as either kind).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Consecutive empty timed-out reads tolerated *mid-frame* before the
/// peer is declared stalled and the read fails. A frame in flight should
/// deliver bytes continuously; a peer that opens a frame and then goes
/// silent (crashed-but-connected, suspended, malicious) must not pin the
/// reading thread forever — with the server's 100 ms read timeout this
/// bounds a stall at ~5 s. Reads that deliver bytes reset the count, so
/// slow-but-live peers are unaffected.
const MAX_STALL_TICKS: u32 = 50;

fn stalled() -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, "peer stalled mid-frame")
}

/// Reads one frame from a blocking stream. `Ok(None)` is a clean EOF at a
/// frame boundary (the peer hung up between frames); EOF *inside* a frame
/// is a typed `Truncated` error. On a stream with a read timeout, a
/// timeout with **no** bytes of the frame read yet is reported as
/// [`FrameError::IdleTimeout`] (call again to keep waiting); a timeout
/// mid-frame just keeps reading — the peer is mid-send.
pub fn read_frame(
    r: &mut impl io::Read,
    max_payload: usize,
) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    let mut stall_ticks = 0u32;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    needed: HEADER_LEN,
                    available: filled,
                }
                .into())
            }
            Ok(n) => {
                filled += n;
                stall_ticks = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) && filled == 0 => return Err(FrameError::IdleTimeout),
            Err(e) if is_timeout(&e) => {
                stall_ticks += 1;
                if stall_ticks > MAX_STALL_TICKS {
                    return Err(stalled().into());
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    // Validate the header via the same path as slice decoding. A header
    // with a well-formed prefix but an absent payload comes back as
    // `Truncated` — that is the normal case here (the payload is still in
    // the stream), and magic/version/size were already checked before the
    // completeness test, so only kind and length are left to extract.
    let (kind, len) = match split_frame(&header, max_payload) {
        Ok((kind, payload, _)) => (kind, payload.len()),
        Err(WireError::Truncated { .. }) => (
            header[5],
            u32::from_le_bytes(header[6..10].try_into().expect("4")) as usize,
        ),
        Err(e) => return Err(e.into()),
    };
    // Grow the payload buffer as bytes actually arrive instead of
    // trusting the header's length for one up-front allocation — a
    // 10-byte header claiming a 16 MiB payload must not cost 16 MiB
    // before a single payload byte shows up.
    let mut payload: Vec<u8> = Vec::with_capacity(len.min(64 * 1024));
    let mut scratch = [0u8; 64 * 1024];
    let mut stall_ticks = 0u32;
    while payload.len() < len {
        let want = (len - payload.len()).min(scratch.len());
        match r.read(&mut scratch[..want]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    needed: len,
                    available: payload.len(),
                }
                .into())
            }
            Ok(n) => {
                payload.extend_from_slice(&scratch[..n]);
                stall_ticks = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                stall_ticks += 1;
                if stall_ticks > MAX_STALL_TICKS {
                    return Err(stalled().into());
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some((kind, payload)))
}

/// Writes one already-assembled frame to a blocking stream.
pub fn write_frame(w: &mut impl io::Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_splits_back() {
        let f = frame(7, b"payload");
        let (kind, payload, consumed) = split_frame(&f, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(kind, 7);
        assert_eq!(payload, b"payload");
        assert_eq!(consumed, f.len());
    }

    #[test]
    fn header_violations_are_typed() {
        let mut f = frame(1, b"x");
        f[0] = b'Z';
        assert!(matches!(
            split_frame(&f, DEFAULT_MAX_FRAME_LEN),
            Err(WireError::BadMagic(_))
        ));
        let mut f = frame(1, b"x");
        f[4] = 99;
        assert_eq!(
            split_frame(&f, DEFAULT_MAX_FRAME_LEN).unwrap_err(),
            WireError::UnsupportedVersion(99)
        );
        let f = frame(1, b"xyz");
        assert!(matches!(
            split_frame(&f[..f.len() - 1], DEFAULT_MAX_FRAME_LEN),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            split_frame(&f, 2),
            Err(WireError::FrameTooLarge { len: 3, max: 2 })
        ));
    }

    #[test]
    fn reader_bounds_and_domains() {
        let mut buf = Vec::new();
        buf.put_u8(1);
        put_string(&mut buf, "hi");
        let mut r = Reader::new(&buf);
        assert!(r.bool("flag").unwrap());
        assert_eq!(r.string().unwrap(), "hi");
        r.expect_empty().unwrap();

        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool("flag").unwrap_err(), WireError::InvalidValue("flag"));
        let mut r = Reader::new(&[5, 0, 0, 0, b'a']);
        assert!(matches!(
            r.string().unwrap_err(),
            WireError::Truncated {
                needed: 5,
                available: 1
            }
        ));
    }

    #[test]
    fn stream_reader_distinguishes_clean_eof() {
        let f = frame(3, b"abc");
        let mut two = f.clone();
        two.extend_from_slice(&frame(4, b""));
        let mut cursor = io::Cursor::new(two);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).unwrap(),
            Some((3, b"abc".to_vec()))
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).unwrap(),
            Some((4, vec![]))
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).unwrap(),
            None
        );

        // EOF mid-frame is typed, not clean.
        let mut cursor = io::Cursor::new(f[..f.len() - 1].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::Wire(WireError::Truncated { .. }))
        ));
    }

    #[test]
    fn accum_decodes_identically_at_every_byte_boundary() {
        // A multi-frame stream: empty payload, short, and multi-hundred
        // byte payloads, so every header/payload boundary is exercised.
        let frames: Vec<(u8, Vec<u8>)> = vec![
            (1, vec![]),
            (7, b"x".to_vec()),
            (3, (0..=255u8).collect()),
            (250, vec![0xAA; 513]),
        ];
        let mut stream = Vec::new();
        for (kind, payload) in &frames {
            stream.extend_from_slice(&frame(*kind, payload));
        }

        // Split the stream at every cut point: the accumulator must yield
        // the exact frame sequence regardless of where readiness events
        // chop the bytes.
        for cut in 0..=stream.len() {
            let mut accum = FrameAccum::new(DEFAULT_MAX_FRAME_LEN);
            let mut got = Vec::new();
            for chunk in [&stream[..cut], &stream[cut..]] {
                accum.extend(chunk);
                while let Some(f) = accum.next_frame().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got, frames, "cut at byte {cut}");
            assert_eq!(accum.pending(), 0);
        }

        // Degenerate delivery: one byte per readiness event.
        let mut accum = FrameAccum::new(DEFAULT_MAX_FRAME_LEN);
        let mut got = Vec::new();
        for b in &stream {
            accum.extend(std::slice::from_ref(b));
            while let Some(f) = accum.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn accum_surfaces_protocol_violations_and_tracks_pending() {
        // Oversized declared length is rejected as soon as the header closes.
        let mut accum = FrameAccum::new(16);
        accum.extend(&frame(2, &[0u8; 17]));
        assert!(matches!(
            accum.next_frame(),
            Err(WireError::FrameTooLarge { len: 17, max: 16 })
        ));

        // Bad magic is typed, not a panic or a silent skip.
        let mut accum = FrameAccum::new(DEFAULT_MAX_FRAME_LEN);
        accum.extend(b"BOGUS!!!!!");
        assert!(matches!(accum.next_frame(), Err(WireError::BadMagic(_))));

        // A half-delivered frame is visible as pending bytes (a nonzero
        // value at EOF means the peer hung up mid-frame).
        let f = frame(9, b"hello");
        let mut accum = FrameAccum::new(DEFAULT_MAX_FRAME_LEN);
        accum.extend(&f[..f.len() - 2]);
        assert_eq!(accum.next_frame().unwrap(), None);
        assert_eq!(accum.pending(), f.len() - 2);
        accum.extend(&f[f.len() - 2..]);
        assert_eq!(accum.next_frame().unwrap(), Some((9, b"hello".to_vec())));
        assert_eq!(accum.pending(), 0);
    }

    #[test]
    fn accum_compacts_under_sustained_traffic() {
        // Thousands of tiny frames through one accumulator: the internal
        // buffer must not retain the whole history.
        let f = frame(5, b"tick");
        let mut accum = FrameAccum::new(DEFAULT_MAX_FRAME_LEN);
        let mut seen = 0usize;
        for _ in 0..4096 {
            accum.extend(&f);
            while let Some((kind, payload)) = accum.next_frame().unwrap() {
                assert_eq!((kind, payload.as_slice()), (5, b"tick".as_slice()));
                seen += 1;
            }
        }
        assert_eq!(seen, 4096);
        assert!(
            accum.buf.len() < 4 * 4096,
            "buffer retained history: {} bytes",
            accum.buf.len()
        );
    }
}
