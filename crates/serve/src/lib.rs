//! `aid_serve` — a multi-client debugging service over the whole AID
//! stack.
//!
//! The paper frames AID as a service: developers submit logs of an
//! intermittently failing application and get back a root cause and a
//! causal explanation path (§1 of the paper; Fariha, Nath, Meliou, SIGMOD
//! 2020). The library crates implement that pipeline in-process; this
//! crate puts a network front end on it:
//!
//! * **Protocol** ([`protocol`], [`wire`]) — a versioned, length-prefixed
//!   binary frame format with typed errors. Uploads stream raw
//!   codec-encoded log bytes (any chunking) straight into the server's
//!   `aid_store::StreamDecoder`; discovery submissions carry a
//!   [`ProgramSpec`] *recipe* rather than a program, so the server can
//!   rebuild the intervention substrate bit-identically — which is what
//!   lets different clients replaying the same scenario share the
//!   engine's intervention cache.
//! * **Transports** ([`transport`]) — an in-process duplex pair for
//!   deterministic tests and a thread-per-connection TCP listener for
//!   real clients (blocking std networking; no async runtime).
//! * **Server** ([`server`]) — one shared `aid_engine::Engine`, a
//!   per-connection `aid_store::TraceStore`, and two-level admission
//!   control (per-client session bound, engine `max_pending` via the
//!   non-blocking `try_submit`) that sheds load with a typed
//!   `Overloaded` instead of queueing unboundedly; graceful drain on
//!   shutdown.
//! * **Client** ([`client`]) — a blocking [`AidClient`] over any byte
//!   stream; the `loadgen` binary in `aid_bench` drives fleets of them.
//!
//! The service's determinism contract: a server-mediated discovery equals
//! the same job submitted to an in-process engine, exactly —
//! `tests/end_to_end.rs` pins this for all six case studies.
//!
//! ```
//! use aid_serve::{Admission, AidClient, ProgramSpec, ServeConfig, Server, SubmitSpec};
//!
//! // An in-process server: same engine, same admission control as TCP.
//! let (server, connector) = Server::start_in_proc(ServeConfig::default());
//! let mut client = AidClient::connect_in_proc(&connector).unwrap();
//! let (version, _name) = client.hello("doc-client").unwrap();
//! assert_eq!(version, aid_serve::PROTOCOL_VERSION);
//!
//! // A synthetic Figure-8 application needs no upload: the server's
//! // exact oracle knows the ground truth for `app_seed`.
//! let spec = SubmitSpec::new("doc-synth", ProgramSpec::Synth { app_seed: 3 });
//! let Admission::Accepted(session) = client.submit(&spec).unwrap() else {
//!     panic!("a fresh server has room");
//! };
//! let (result, _progress) = client.wait(session).unwrap();
//! assert!(result.root_cause().is_some());
//!
//! client.goodbye().unwrap();
//! let stats = server.shutdown();
//! assert_eq!(stats.sessions_delivered, 1);
//! ```

pub mod client;
pub mod protocol;
mod reactor;
pub mod server;
pub mod transport;
pub mod wire;

pub use aid_obs::{HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot};
pub use client::{
    Admission, AidClient, ClientError, Overload, SubmitSpec, TailReport, UploadReport, WatchSpec,
};
pub use protocol::{
    AnalysisSpec, ErrorCode, OverloadScope, ProgramSpec, Request, Response, ServerStats,
    SessionState,
};
pub use server::{ServeConfig, Server, ServerHandle};
pub use transport::{
    duplex, in_proc, Deadline, DuplexStream, EventConn, InProcConnector, InProcListener, Listener,
    Readiness, ReadySignal, TcpTransport,
};
pub use wire::{FrameAccum, FrameError, WireError, PROTOCOL_VERSION};
