//! Standing queries over the wire: a subscribed watch fed the corpus as
//! chunked tails converges to the *identical* `DiscoveryResult` as a
//! one-shot upload + submit over the same bytes, stat-neutral tails after
//! convergence are answered from the watcher's cache without touching the
//! engine, and the per-client watch bound, `Synth` refusal, and unknown
//! watch ids are all typed outcomes.

use aid_cases::{all_cases, collect_logs_sized, CaseStudy};
use aid_core::DiscoveryResult;
use aid_serve::{
    Admission, AidClient, AnalysisSpec, ErrorCode, InProcConnector, OverloadScope, ProgramSpec,
    ServeConfig, Server, SubmitSpec, WatchSpec,
};
use aid_trace::{codec, Outcome, Trace, TraceSet};
use aid_watch::WatchEvent;

fn case_watch_spec(case: &CaseStudy, name: &str) -> WatchSpec {
    let mut spec = WatchSpec::new(
        name,
        AnalysisSpec::Case {
            name: case.name.to_string(),
        },
        ProgramSpec::Case {
            name: case.name.to_string(),
        },
    );
    spec.runs_per_round = case.runs_per_round as u32;
    spec
}

/// The convergence a tick reported, whatever event carried it.
fn converged_result(events: &[WatchEvent]) -> Option<&DiscoveryResult> {
    events.iter().rev().find_map(|e| match e {
        WatchEvent::Converged { result, .. } => Some(result),
        WatchEvent::RootChanged { result, .. } => Some(result),
        _ => None,
    })
}

/// A tail that moves no predicate statistic: a replay of a successful run
/// already in the corpus. Site stability, duration envelopes, unique
/// returns, and every candidate's counts are preserved, so streaming it
/// after convergence must be answered from the watcher's cached result.
fn stat_neutral_tail(set: &TraceSet) -> String {
    let replay: Vec<Trace> = set
        .traces
        .iter()
        .find(|t| matches!(t.outcome, Outcome::Success))
        .cloned()
        .into_iter()
        .collect();
    assert!(!replay.is_empty(), "the corpus has successful runs");
    codec::encode(&TraceSet {
        methods: set.methods.clone(),
        objects: set.objects.clone(),
        channels: set.channels.clone(),
        traces: replay,
    })
}

/// One-shot over the same corpus bytes through the ordinary upload +
/// submit path on a fresh connection to the same server.
fn one_shot(connector: &InProcConnector, case: &CaseStudy, encoded: &str) -> DiscoveryResult {
    let mut client = AidClient::connect_in_proc(connector).expect("connect");
    client.hello("one-shot").expect("hello");
    let report = client
        .upload(
            encoded.as_bytes(),
            4096,
            AnalysisSpec::Case {
                name: case.name.to_string(),
            },
        )
        .expect("upload");
    assert!(report.analyzed);
    let mut spec = SubmitSpec::new(
        format!("{}/one-shot", case.name),
        ProgramSpec::Case {
            name: case.name.to_string(),
        },
    );
    spec.runs_per_round = case.runs_per_round as u32;
    let Admission::Accepted(session) = client.submit(&spec).expect("submit") else {
        panic!("fresh connection refused");
    };
    let (result, _) = client.wait(session).expect("wait");
    client.goodbye().expect("goodbye");
    result
}

/// A watch fed the corpus in two tails (the cut splits a line) converges
/// to the identical result as a one-shot submission, and a stat-neutral
/// tail afterwards is answered from the cache with zero engine traffic.
#[test]
fn streamed_watch_equals_one_shot_then_idles_on_cache() {
    let (server, connector) = Server::start_in_proc(ServeConfig::default());
    let case = all_cases().remove(0);
    let set = collect_logs_sized(&case, 10, 10);
    let encoded = codec::encode(&set);

    let direct = one_shot(&connector, &case, &encoded);

    let mut client = AidClient::connect_in_proc(&connector).expect("connect");
    client.hello("watcher").expect("hello");
    let Admission::Accepted(watch) = client
        .subscribe(&case_watch_spec(&case, "streamed"))
        .expect("subscribe")
    else {
        panic!("fresh connection refused a watch");
    };

    // Two tails; the cut lands mid-line so the decoder must carry state.
    let cut = encoded.len() / 2 + 3;
    client
        .stream_tail(watch, &encoded.as_bytes()[..cut], false)
        .expect("first tail");
    let report = client
        .stream_tail(watch, &encoded.as_bytes()[cut..], true)
        .expect("final tail");
    assert_eq!(report.traces, set.traces.len() as u64);
    let streamed = converged_result(&report.events).expect("full corpus converges");
    assert_eq!(
        *streamed, direct,
        "{}: streamed-tail discovery must equal the one-shot result",
        case.name
    );

    // Post-convergence economy: a stat-neutral tail republishes the
    // cached convergence without a single new engine execution.
    let before = server.stats();
    let idle_tail = stat_neutral_tail(&set);
    let report = client
        .stream_tail(watch, idle_tail.as_bytes(), true)
        .expect("stat-neutral tail");
    match report.events.as_slice() {
        [WatchEvent::Converged {
            result,
            resubmitted,
            reprobed,
            ..
        }] => {
            assert_eq!(result, &direct, "the cached convergence is republished");
            assert!(!resubmitted, "no re-discovery for a stat-neutral tail");
            assert_eq!(*reprobed, 0);
        }
        other => panic!("expected one cached Converged, got {other:?}"),
    }
    let after = server.stats();
    assert_eq!(
        after.executions, before.executions,
        "a stat-neutral tail costs zero intervention runs"
    );
    assert!(after.view_skipped > before.view_skipped);

    assert!(client.unsubscribe(watch).expect("unsubscribe"));
    client.goodbye().expect("goodbye");
    let stats = server.shutdown();
    assert_eq!(stats.watches_subscribed, 1);
    assert!(stats.watch_events >= 2, "convergence + cached republish");
    assert_eq!(stats.protocol_errors, 0);
}

/// The per-client watch bound refuses with `Overloaded { scope: Client }`
/// and frees on unsubscribe; `Synth` programs are `Unwatchable`; tails to
/// unknown ids are `UnknownWatch` (and do not kill the connection).
#[test]
fn watch_admission_and_typed_refusals() {
    let config = ServeConfig {
        max_watches_per_client: 1,
        ..ServeConfig::default()
    };
    let (server, connector) = Server::start_in_proc(config);
    let case = all_cases().remove(0);
    let mut client = AidClient::connect_in_proc(&connector).expect("connect");
    client.hello("bounded").expect("hello");

    let Admission::Accepted(watch) = client
        .subscribe(&case_watch_spec(&case, "first"))
        .expect("subscribe")
    else {
        panic!("the single slot is free");
    };
    let second = client
        .subscribe(&case_watch_spec(&case, "second"))
        .expect("subscribe");
    let Admission::Rejected(overload) = second else {
        panic!("the single slot is occupied: {second:?}");
    };
    assert_eq!(overload.scope, OverloadScope::Client);
    assert_eq!(overload.in_flight, 1);
    assert_eq!(overload.limit, 1);

    // A tail to an id the connection never subscribed is a typed error
    // that leaves the connection usable.
    match client.stream_tail(watch + 17, b"", false) {
        Err(aid_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownWatch)
        }
        other => panic!("expected UnknownWatch, got {other:?}"),
    }

    // Unsubscribe frees the slot.
    assert!(client.unsubscribe(watch).expect("unsubscribe"));
    assert!(!client
        .unsubscribe(watch)
        .expect("second unsubscribe is a no-op"));

    // The synthetic oracle consumes no trace stream — refused even with a
    // free slot.
    let synth = WatchSpec::new(
        "synth",
        AnalysisSpec::Default,
        ProgramSpec::Synth { app_seed: 3 },
    );
    match client.subscribe(&synth) {
        Err(aid_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::Unwatchable)
        }
        other => panic!("expected Unwatchable, got {other:?}"),
    }

    // The freed slot admits a retry.
    let Admission::Accepted(_) = client
        .subscribe(&case_watch_spec(&case, "retry"))
        .expect("subscribe")
    else {
        panic!("slot freed by unsubscribe");
    };

    client.goodbye().expect("goodbye");
    let stats = server.shutdown();
    assert_eq!(stats.rejected_client, 1);
    assert_eq!(stats.watches_subscribed, 2);
}

/// An idle connection under the reactor costs a registered waker and
/// nothing else: no handler wakeups fire between frames, yet the
/// connection answers the moment traffic resumes.
#[test]
fn idle_connections_back_off_and_stay_responsive() {
    let (server, connector) = Server::start_in_proc(ServeConfig::default());
    let mut client = AidClient::connect_in_proc(&connector).expect("connect");
    client.hello("idler").expect("hello");

    // Sit silent long enough that the old loop would have burned several
    // read-timeout wakeups.
    std::thread::sleep(std::time::Duration::from_millis(450));
    let stats = client.stats().expect("the connection still answers");
    // Exactly one dispatch per request so far (Hello, Stats): silence
    // dispatched nothing.
    assert_eq!(
        stats.handler_dispatches, 2,
        "idle silence cost handler wakeups: {stats:?}"
    );

    // Still responsive after the silence, and each request costs exactly
    // one further dispatch.
    let again = client.stats().expect("stats after idling");
    assert_eq!(again.handler_dispatches, 3);

    client.goodbye().expect("goodbye");
    server.shutdown();
}

/// Tail appends are bounded *per frame*, not charged against the
/// cumulative upload quota that only `BeginUpload` resets — the
/// regression where a long-lived watcher eventually hit `UploadTooLarge`
/// no matter how small its tails were. A watcher streaming far more than
/// `max_upload_bytes` in total stays admitted; only an individual
/// oversized frame is refused, and the refusal doesn't kill the watch.
#[test]
fn tail_stream_total_is_unbounded_only_frames_are_capped() {
    let case = all_cases().remove(0);
    let set = collect_logs_sized(&case, 10, 10);
    let encoded = codec::encode(&set);

    // A quota far below the corpus: the old cumulative accounting would
    // refuse the stream partway through.
    let quota = 2048u64;
    assert!(
        encoded.len() as u64 > 4 * quota,
        "corpus must dwarf the quota for the regression to bite"
    );
    let config = ServeConfig {
        max_upload_bytes: quota,
        ..ServeConfig::default()
    };
    let (server, connector) = Server::start_in_proc(config);
    let mut client = AidClient::connect_in_proc(&connector).expect("connect");
    client.hello("long-lived-watcher").expect("hello");
    let Admission::Accepted(watch) = client
        .subscribe(&case_watch_spec(&case, "unbounded-total"))
        .expect("subscribe")
    else {
        panic!("fresh connection refused a watch");
    };

    // The whole corpus in sub-quota tails; every one must be admitted
    // even after the cumulative total passes the quota many times over.
    let chunks: Vec<&[u8]> = encoded.as_bytes().chunks(512).collect();
    let mut report = None;
    for (i, chunk) in chunks.iter().enumerate() {
        let fin = i + 1 == chunks.len();
        report =
            Some(client.stream_tail(watch, chunk, fin).unwrap_or_else(|e| {
                panic!("tail {i} refused after {} total bytes: {e:?}", i * 512)
            }));
    }
    let report = report.expect("corpus is non-empty");
    assert_eq!(report.traces, set.traces.len() as u64);
    converged_result(&report.events).expect("full corpus converges");

    // A single frame over the bound is a typed refusal…
    let oversized = vec![b'x'; quota as usize + 1];
    match client.stream_tail(watch, &oversized, false) {
        Err(aid_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::UploadTooLarge)
        }
        other => panic!("expected UploadTooLarge, got {other:?}"),
    }

    // …that leaves the watch (and the connection) alive.
    let idle_tail = stat_neutral_tail(&set);
    client
        .stream_tail(watch, idle_tail.as_bytes(), true)
        .expect("watch survives the refused frame");

    assert!(client.unsubscribe(watch).expect("unsubscribe"));
    client.goodbye().expect("goodbye");
    let stats = server.shutdown();
    assert_eq!(
        stats.protocol_errors, 0,
        "the refusal is typed, not a protocol error"
    );
}
