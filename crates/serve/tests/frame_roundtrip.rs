//! Property tests for the wire protocol: every frame round-trips exactly,
//! every truncation is a typed `Truncated`, and no corruption of any
//! single byte can make decoding panic (it may decode to a different
//! valid frame — e.g. a flipped bit inside a string — but it must always
//! *return*).

// `Strategy` would collide with `proptest::prelude::Strategy`.
use aid_core::{DiscoveryResult, Phase, RoundLog, Strategy as DiscoveryStrategy};
use aid_lab::{BugClass, ScenarioSpec};
use aid_predicates::PredicateId;
use aid_serve::wire::{self, WireError};
use aid_serve::{AnalysisSpec, ProgramSpec, Request, Response, ServerStats, SessionState};
use aid_trace::{FailureSignature, MethodId};
use aid_watch::WatchEvent;
use proptest::prelude::*;

const MAX: usize = wire::DEFAULT_MAX_FRAME_LEN;

/// Sampled raw material for one request: a variant selector, three
/// general-purpose integers, a name, and a byte payload.
type RawRequest = (u8, (u64, u64, u32), Vec<u8>, Vec<u8>);

fn raw_request() -> impl Strategy<Value = RawRequest> {
    (
        0u8..=12,
        (0u64..1 << 48, 0u64..1 << 48, 0u32..1 << 20),
        proptest::collection::vec(0u8..26, 0..12),
        proptest::collection::vec(0u8..=255, 0..64),
    )
}

fn name_from(alpha: &[u8]) -> String {
    alpha.iter().map(|b| (b'a' + b) as char).collect()
}

fn build_request((selector, (a, b, c), alpha, bytes): RawRequest) -> Request {
    let name = name_from(&alpha);
    match selector {
        0 => Request::Hello { client: name },
        1 => Request::BeginUpload {
            analysis: match a % 3 {
                0 => AnalysisSpec::Default,
                1 => AnalysisSpec::Case { name },
                _ => AnalysisSpec::Lab(ScenarioSpec {
                    seed: b,
                    attempt: c % 24,
                    bug_class: BugClass::ALL[(a % 5) as usize],
                    mirrors: (c % 10) as usize,
                    chain: (c % 4) as usize,
                    monitors: (c % 3) as usize,
                    noise_threads: (c % 4) as usize,
                }),
            },
        },
        2 => Request::UploadChunk { bytes },
        3 => Request::FinishUpload,
        4 => {
            // Rotate through all three program-spec variants.
            let program = match a % 3 {
                0 => ProgramSpec::Case { name: name.clone() },
                1 => ProgramSpec::Lab(ScenarioSpec {
                    seed: a,
                    attempt: c % 24,
                    bug_class: BugClass::ALL[(b % 5) as usize],
                    mirrors: (c % 10) as usize,
                    chain: (c % 4) as usize,
                    monitors: (c % 3) as usize,
                    noise_threads: (c % 4) as usize,
                }),
                _ => ProgramSpec::Synth { app_seed: a },
            };
            let strategy = match b % 5 {
                0 => DiscoveryStrategy::Aid,
                1 => DiscoveryStrategy::AidP,
                2 => DiscoveryStrategy::AidPB,
                3 => DiscoveryStrategy::Tagt,
                _ => DiscoveryStrategy::Custom {
                    branch: a % 2 == 0,
                    prune: b % 2 == 0,
                },
            };
            Request::SubmitDiscovery {
                name,
                program,
                strategy,
                discovery_seed: a,
                runs_per_round: c,
                first_seed: b,
                prune_quorum: c % 7,
            }
        }
        5 => Request::Poll { session: c },
        6 => Request::Stream { session: c },
        7 => Request::Stats,
        8 => Request::Cancel { session: c },
        9 => Request::Subscribe {
            name: name.clone(),
            analysis: match a % 2 {
                0 => AnalysisSpec::Default,
                _ => AnalysisSpec::Lab(ScenarioSpec {
                    seed: b,
                    attempt: c % 24,
                    bug_class: BugClass::ALL[(a % 5) as usize],
                    mirrors: (c % 10) as usize,
                    chain: (c % 4) as usize,
                    monitors: (c % 3) as usize,
                    noise_threads: (c % 4) as usize,
                }),
            },
            program: ProgramSpec::Case { name: name.clone() },
            strategy: if b % 2 == 0 {
                DiscoveryStrategy::Aid
            } else {
                DiscoveryStrategy::Tagt
            },
            discovery_seed: a,
            runs_per_round: c,
            first_seed: b,
            prune_quorum: c % 7,
            retention_traces: a ^ b,
            retention_age: b.wrapping_mul(3),
            max_probe_runs: a.wrapping_add(b),
        },
        10 => Request::StreamTail {
            watch: c,
            bytes,
            fin: a % 2 == 0,
        },
        11 => Request::Unsubscribe { watch: c },
        _ => Request::Goodbye,
    }
}

/// Sampled raw material for one response: a selector, integers, a name,
/// and predicate-id pools for a synthesized discovery result.
type RawResponse = (u8, (u64, u64, u32), Vec<u8>, Vec<u32>, Vec<u32>);

fn raw_response() -> impl Strategy<Value = RawResponse> {
    (
        0u8..=12,
        (0u64..1 << 48, 0u64..1 << 48, 0u32..1 << 20),
        proptest::collection::vec(0u8..26, 0..12),
        proptest::collection::vec(0u32..1 << 16, 0..8),
        proptest::collection::vec(0u32..1 << 16, 0..6),
    )
}

fn predicates(raw: &[u32]) -> Vec<PredicateId> {
    raw.iter().map(|&i| PredicateId::from_raw(i)).collect()
}

fn build_response((selector, (a, b, c), alpha, ids, ids2): RawResponse) -> Response {
    let name = name_from(&alpha);
    match selector {
        0 => Response::HelloOk {
            version: (a % 250) as u8,
            server: name,
        },
        1 => Response::UploadAck {
            traces: a,
            quarantined: b,
            analyzed: c % 2 == 0,
        },
        2 => Response::Submitted { session: c },
        3 => Response::Overloaded {
            scope: match a % 3 {
                0 => aid_serve::OverloadScope::Client,
                1 => aid_serve::OverloadScope::Engine,
                _ => aid_serve::OverloadScope::Draining,
            },
            in_flight: c,
            limit: c / 2,
        },
        4 => {
            let state = match a % 4 {
                0 => SessionState::Pending,
                1 => SessionState::Done(DiscoveryResult {
                    causal: predicates(&ids),
                    spurious: predicates(&ids2),
                    failure: PredicateId::from_raw(c),
                    rounds: (b % 1000) as usize,
                    log: ids
                        .iter()
                        .map(|&i| RoundLog {
                            phase: match i % 3 {
                                0 => Phase::Branch,
                                1 => Phase::Giwp,
                                _ => Phase::Tagt,
                            },
                            intervened: predicates(&ids2),
                            stopped: i % 2 == 0,
                            confirmed: predicates(&ids[..ids.len().min(2)]),
                            pruned: vec![],
                        })
                        .collect(),
                }),
                2 => SessionState::Lost,
                _ => SessionState::Unknown,
            };
            Response::Status { session: c, state }
        }
        5 => Response::Progress {
            session: c,
            executions: a,
            cache_hits: b,
            sessions_completed: a ^ b,
        },
        6 => Response::StatsOk(ServerStats {
            connections: a,
            connections_refused: b % 23,
            active_connections: b % 17,
            frames_in: a ^ 1,
            frames_out: b ^ 2,
            bytes_in: a / 3,
            bytes_out: b / 5,
            upload_chunks: a % 999,
            traces_ingested: b % 999,
            records_quarantined: a % 7,
            sessions_accepted: b % 101,
            rejected_client: a % 11,
            rejected_engine: b % 13,
            sessions_cancelled: a % 5,
            sessions_delivered: b % 97,
            sessions_lost: a % 3,
            protocol_errors: b % 2,
            executions: a,
            cache_hits: b,
            cache_misses: a % 1000,
            cache_entries: b % 1000,
            sessions_completed: a % 500,
            peak_pending: b % 64,
            store_evicted: a % 333,
            store_compactions: b % 19,
            view_reprobed: a % 777,
            view_skipped: b % 777,
            watches_subscribed: a % 29,
            watch_events: b % 555,
            engine_shards: b % 16,
            peak_connections: a % 512,
            handler_dispatches: b % 4_096,
        }),
        7 => Response::Cancelled {
            session: c,
            existed: a % 2 == 0,
        },
        8 => Response::Error {
            code: match a % 9 {
                0 => aid_serve::ErrorCode::Malformed,
                1 => aid_serve::ErrorCode::UnknownCase,
                2 => aid_serve::ErrorCode::NoAnalysis,
                3 => aid_serve::ErrorCode::Internal,
                4 => aid_serve::ErrorCode::UploadTooLarge,
                5 => aid_serve::ErrorCode::TooManyConnections,
                6 => aid_serve::ErrorCode::UnknownWatch,
                7 => aid_serve::ErrorCode::Unwatchable,
                _ => aid_serve::ErrorCode::Draining,
            },
            message: name,
        },
        9 => Response::Subscribed { watch: c },
        10 => Response::WatchEvents {
            watch: c,
            traces: a,
            events: ids
                .iter()
                .map(|&i| {
                    let result = DiscoveryResult {
                        causal: predicates(&ids2),
                        spurious: predicates(&ids[..ids.len().min(3)]),
                        failure: PredicateId::from_raw(i),
                        rounds: (i % 50) as usize,
                        log: vec![],
                    };
                    match i % 4 {
                        0 => WatchEvent::Converged {
                            result,
                            reprobed: i ^ 1,
                            skipped: i ^ 2,
                            resubmitted: i % 8 < 4,
                        },
                        1 => WatchEvent::RootChanged {
                            root: (i % 3 == 0).then(|| PredicateId::from_raw(i / 2)),
                            result,
                        },
                        2 => WatchEvent::NewFailureClass {
                            signature: FailureSignature {
                                kind: name_from(&alpha),
                                method: MethodId::from_raw(i),
                            },
                            classes: i % 12,
                        },
                        _ => WatchEvent::BudgetExhausted {
                            probe_runs: a ^ u64::from(i),
                            budget: b ^ u64::from(i),
                        },
                    }
                })
                .collect(),
        },
        11 => Response::Unsubscribed {
            watch: c,
            existed: a % 2 == 0,
        },
        _ => Response::Bye,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// encode → decode is the identity on every request frame, and
    /// consumes exactly the frame.
    #[test]
    fn prop_request_roundtrip(raw in raw_request()) {
        let request = build_request(raw);
        let bytes = request.encode();
        let (back, consumed) = Request::decode(&bytes, MAX)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back, request);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// encode → decode is the identity on every response frame.
    #[test]
    fn prop_response_roundtrip(raw in raw_response()) {
        let response = build_response(raw);
        let bytes = response.encode();
        let (back, consumed) = Response::decode(&bytes, MAX)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back, response);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// Every proper prefix of a frame decodes to a typed `Truncated`,
    /// never a panic and never a value.
    #[test]
    fn prop_truncation_is_typed(raw in raw_request(), cut_seed in 0usize..1 << 16) {
        let bytes = build_request(raw).encode();
        let cut = cut_seed % bytes.len();
        match Request::decode(&bytes[..cut], MAX) {
            Err(WireError::Truncated { .. }) => {}
            other => return Err(TestCaseError::fail(format!(
                "cut at {cut}/{}: expected Truncated, got {other:?}", bytes.len()
            ))),
        }
    }

    /// Flipping any single byte never panics the decoder. Header
    /// corruption is always caught with the matching typed error; payload
    /// corruption may decode to a different valid frame (a flipped byte
    /// inside a string is still a string) but must always return.
    #[test]
    fn prop_corruption_never_panics(
        raw in raw_request(),
        pos_seed in 0usize..1 << 16,
        flip in 1u8..=255,
    ) {
        let mut bytes = build_request(raw).encode();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        let decoded = Request::decode(&bytes, MAX);
        match pos {
            0..=3 => prop_assert_eq!(
                decoded.unwrap_err(),
                WireError::BadMagic(bytes[..4].try_into().unwrap())
            ),
            4 => prop_assert_eq!(
                decoded.unwrap_err(),
                WireError::UnsupportedVersion(bytes[4])
            ),
            _ => {
                // Kind, length, or payload damage: any typed error (or an
                // accidental different-but-valid frame) is acceptable —
                // reaching this line at all is the property.
                let _ = decoded;
            }
        }
    }

    /// Response frames under the same corruption property.
    #[test]
    fn prop_response_corruption_never_panics(
        raw in raw_response(),
        pos_seed in 0usize..1 << 16,
        flip in 1u8..=255,
    ) {
        let mut bytes = build_response(raw).encode();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        let _ = Response::decode(&bytes, MAX);
    }
}
