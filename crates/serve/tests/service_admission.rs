//! Admission control, cancellation, malformed-frame handling, quarantine
//! propagation, and the TCP transport — the service behaviors around the
//! happy path.

use aid_serve::{
    wire, Admission, AidClient, AnalysisSpec, ErrorCode, OverloadScope, ProgramSpec, Response,
    ServeConfig, Server, SessionState, SubmitSpec,
};
use aid_trace::codec;
use std::io::Write;
use std::time::Duration;

fn synth_spec(name: &str, app_seed: u64) -> SubmitSpec {
    SubmitSpec::new(name, ProgramSpec::Synth { app_seed })
}

/// An undelivered session occupies its admission slot even after it
/// finishes — the slot frees when the client *fetches* the result — so
/// the per-client bound is deterministic, not a race against the engine.
#[test]
fn per_client_bound_sheds_then_recovers() {
    let config = ServeConfig {
        max_sessions_per_client: 1,
        ..ServeConfig::default()
    };
    let (server, connector) = Server::start_in_proc(config);
    let mut client = AidClient::connect_in_proc(&connector).unwrap();
    client.hello("bounded").unwrap();

    let Admission::Accepted(first) = client.submit(&synth_spec("first", 1)).unwrap() else {
        panic!("slot is free");
    };
    let rejected = client.submit(&synth_spec("second", 2)).unwrap();
    let Admission::Rejected(overload) = rejected else {
        panic!("the single slot is occupied: {rejected:?}");
    };
    assert_eq!(overload.scope, OverloadScope::Client);
    assert_eq!(overload.in_flight, 1);
    assert_eq!(overload.limit, 1);

    // Fetch the first result; the slot frees and the retry is admitted.
    loop {
        match client.poll(first).unwrap() {
            SessionState::Pending => std::thread::sleep(Duration::from_millis(1)),
            SessionState::Done(result) => {
                assert!(result.root_cause().is_some());
                break;
            }
            other => panic!("unexpected state {other:?}"),
        }
    }
    assert_eq!(client.poll(first).unwrap(), SessionState::Unknown);
    let Admission::Accepted(second) = client.submit(&synth_spec("retry", 2)).unwrap() else {
        panic!("slot freed by delivery");
    };

    // Cancel frees the slot without delivering.
    assert!(client.cancel(second).unwrap());
    assert!(!client.cancel(second).unwrap(), "second cancel is a no-op");
    assert_eq!(client.poll(second).unwrap(), SessionState::Unknown);

    client.goodbye().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.rejected_client, 1);
    assert_eq!(stats.sessions_accepted, 2);
    assert_eq!(stats.sessions_cancelled, 1);
    assert_eq!(stats.sessions_delivered, 1);
}

/// A malformed frame gets a typed `Malformed` error response, counts as a
/// protocol error, and closes the connection — it never panics a handler
/// thread or poisons other connections.
#[test]
fn malformed_frames_answered_and_connection_closed() {
    let (server, connector) = Server::start_in_proc(ServeConfig::default());

    // A healthy client before the vandal.
    let mut good = AidClient::connect_in_proc(&connector).unwrap();
    good.hello("good").unwrap();

    let mut vandal = connector.connect().unwrap();
    vandal.write_all(b"NOT A FRAME AT ALL......").unwrap();
    let (kind, payload) = wire::read_frame(&mut vandal, wire::DEFAULT_MAX_FRAME_LEN)
        .unwrap()
        .expect("the server answers before closing");
    match Response::decode_payload(kind, &payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a Malformed error, got {other:?}"),
    }
    assert!(
        wire::read_frame(&mut vandal, wire::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .is_none(),
        "the server hangs up after a protocol violation"
    );
    drop(vandal);

    // The healthy connection is unaffected.
    let Admission::Accepted(session) = good.submit(&synth_spec("after-vandal", 7)).unwrap() else {
        panic!("healthy client unaffected");
    };
    let (result, _) = good.wait(session).unwrap();
    assert!(result.root_cause().is_some());
    good.goodbye().unwrap();

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.sessions_delivered, 1);
}

/// A truncated upload propagates the store's quarantine through the
/// protocol: the trailing partial line (and the trace it would have
/// closed) is quarantined, everything before it survives, and the
/// analysis still forms when failures remain.
#[test]
fn truncated_upload_reports_quarantine() {
    let (server, connector) = Server::start_in_proc(ServeConfig::default());
    let case = aid_cases::all_cases().remove(0);
    let set = aid_cases::collect_logs_sized(&case, 8, 8);
    let text = codec::encode(&set);
    // Cut mid-line inside the final record.
    let cut = text.trim_end().len() - 3;

    let mut client = AidClient::connect_in_proc(&connector).unwrap();
    client.hello("truncated").unwrap();
    let report = client
        .upload(
            &text.as_bytes()[..cut],
            512,
            AnalysisSpec::Case {
                name: case.name.to_string(),
            },
        )
        .unwrap();
    assert_eq!(report.traces, set.traces.len() as u64 - 1);
    assert_eq!(report.quarantined, 1, "partial tail + open trace");
    assert!(report.analyzed, "failures earlier in the corpus remain");
    client.goodbye().unwrap();

    let stats = server.shutdown();
    assert_eq!(stats.records_quarantined, 1);
    assert_eq!(
        stats.traces_ingested,
        set.traces.len() as u64 - 1,
        "protocol errors stay zero — quarantine is an ingest outcome, not a wire violation"
    );
    assert_eq!(stats.protocol_errors, 0);
}

/// The per-upload byte quota refuses oversized uploads with a typed
/// error, and `BeginUpload` resets the budget.
#[test]
fn upload_quota_is_enforced_and_resets() {
    let config = ServeConfig {
        max_upload_bytes: 64,
        ..ServeConfig::default()
    };
    let (server, connector) = Server::start_in_proc(config);
    let mut client = AidClient::connect_in_proc(&connector).unwrap();
    client.hello("uploader").unwrap();

    let big = vec![b'#'; 200]; // comment bytes: quota fires before parsing matters
    match client.upload(&big, 50, AnalysisSpec::Default) {
        Err(aid_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::UploadTooLarge)
        }
        other => panic!("expected UploadTooLarge, got {other:?}"),
    }
    // The connection survives, and a fresh upload has a fresh budget.
    let report = client
        .upload(b"# tiny\n", 50, AnalysisSpec::Default)
        .unwrap();
    assert_eq!(report.traces, 0);
    client.goodbye().unwrap();
    server.shutdown();
}

/// Accepts beyond the connection cap are refused with a typed error
/// before a handler thread or trace store is spent on them.
#[test]
fn connection_cap_refuses_with_typed_error() {
    let config = ServeConfig {
        max_connections: 1,
        ..ServeConfig::default()
    };
    let (server, connector) = Server::start_in_proc(config);
    let mut first = AidClient::connect_in_proc(&connector).unwrap();
    first.hello("first").unwrap(); // proves the slot is occupied

    let mut second = AidClient::connect_in_proc(&connector).unwrap();
    match second.hello("second") {
        Err(aid_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::TooManyConnections)
        }
        other => panic!("expected TooManyConnections, got {other:?}"),
    }

    first.goodbye().unwrap();
    drop(second);
    let stats = server.shutdown();
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.connections_refused, 1);
}

/// A connected-but-silent client must not wedge the drain: every
/// accepted connection carries a read timeout, and the handler closes at
/// its next idle tick once the drain flag is up. Without that, this test
/// would hang forever in `shutdown()`.
#[test]
fn drain_closes_idle_connections() {
    let (server, connector) = Server::start_in_proc(ServeConfig::default());
    let mut client = AidClient::connect_in_proc(&connector).unwrap();
    client.hello("idler").unwrap();
    // No goodbye, no disconnect — the client just sits there.
    let stats = server.shutdown();
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.active_connections, 0);
    // The server hung up; the next call fails rather than blocking.
    assert!(client.stats().is_err());
}

/// The same conversation over real loopback TCP: hello, submit, stream,
/// stats over the wire, clean shutdown.
#[test]
fn tcp_round_trip() {
    let (server, addr) = Server::start_tcp("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = AidClient::connect_tcp(addr).unwrap();
    let (version, name) = client.hello("tcp").unwrap();
    assert_eq!(version, aid_serve::PROTOCOL_VERSION);
    assert_eq!(name, "aid-serve");

    let Admission::Accepted(session) = client.submit(&synth_spec("tcp-synth", 5)).unwrap() else {
        panic!("fresh server has room");
    };
    let (result, _progress) = client.wait(session).unwrap();
    assert!(result.root_cause().is_some());

    let stats = client.stats().unwrap();
    assert_eq!(stats.active_connections, 1);
    assert_eq!(stats.sessions_delivered, 1);

    client.goodbye().unwrap();
    let final_stats = server.shutdown();
    assert_eq!(final_stats.connections, 1);
    assert_eq!(final_stats.active_connections, 0);
    assert_eq!(final_stats.protocol_errors, 0);
}

/// Draining while a client is mid-`Stream` terminates the stream with a
/// typed `Draining` error instead of holding shutdown open until the
/// session completes — the regression the old polling loop had, where the
/// pending loop never consulted the shutdown flag.
#[test]
fn drain_interrupts_streaming_clients_promptly() {
    // One engine worker and a deep queue: the streamed session sits far
    // back in line, so the stream is reliably still pending at drain time.
    let config = ServeConfig {
        engine: aid_engine::EngineConfig {
            workers: 1,
            max_pending: 256,
            ..aid_engine::EngineConfig::default()
        },
        max_sessions_per_client: 64,
        ..ServeConfig::default()
    };
    let (server, connector) = Server::start_in_proc(config);
    let mut client = AidClient::connect_in_proc(&connector).unwrap();
    client.hello("drained-mid-stream").unwrap();

    let mut last = 0;
    for seed in 0..64 {
        let Admission::Accepted(session) = client
            .submit(&synth_spec(&format!("queued-{seed}"), seed))
            .unwrap()
        else {
            panic!("deep queue admits all 64");
        };
        last = session;
    }

    // Stream the last queued session from another thread; it blocks in
    // Progress frames while 63 sessions run ahead of it.
    let streamer = std::thread::spawn(move || client.wait(last));

    // Let the Stream request register as a server-side continuation.
    std::thread::sleep(Duration::from_millis(30));
    let started = std::time::Instant::now();
    server.shutdown();
    let drain_elapsed = started.elapsed();

    match streamer.join().expect("streamer panicked") {
        Err(aid_serve::ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Draining, "typed terminal error: {message}");
        }
        other => panic!("expected a terminal Draining error, got {other:?}"),
    }
    // Bounded: the drain never waited for the 63 queued sessions through
    // the stream; only the engine's own (fast) queue drain remains.
    assert!(
        drain_elapsed < Duration::from_secs(30),
        "shutdown took {drain_elapsed:?}"
    );
}
