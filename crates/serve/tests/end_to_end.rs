//! The service's determinism contract: a discovery mediated by the wire
//! protocol, the server's per-connection store, and the shared engine is
//! *identical* — full `DiscoveryResult` equality, i.e. byte-identical
//! intervention schedules — to the same job submitted to an in-process
//! engine over the same corpus. Pinned for all six case studies.
//!
//! Also pins the service's cross-client economics: two clients replaying
//! the same scenario produce one set of executions — the second client is
//! answered entirely from the shared intervention cache.

use aid_cases::{all_cases, analyze_case, collect_logs_sized, CaseStudy};
use aid_core::{DiscoveryResult, Strategy};
use aid_engine::{DiscoveryJob, Engine};
use aid_serve::{
    Admission, AidClient, AnalysisSpec, InProcConnector, ProgramSpec, ServeConfig, Server,
    SubmitSpec,
};
use aid_sim::Simulator;
use aid_trace::codec;
use std::sync::Arc;

const DISCOVERY_SEED: u64 = 11;
const FIRST_SEED: u64 = 1_000_000;

fn direct_discovery(case: &CaseStudy, set: &aid_trace::TraceSet) -> DiscoveryResult {
    let analysis = analyze_case(case, set);
    let engine = Engine::with_workers(2);
    engine
        .submit(DiscoveryJob::sim(
            format!("{}/direct", case.name),
            Arc::new(analysis.dag.clone()),
            Arc::new(Simulator::new(case.program.clone())),
            Arc::new(analysis.extraction.catalog.clone()),
            analysis.extraction.failure,
            case.runs_per_round,
            FIRST_SEED,
            Strategy::Aid,
            DISCOVERY_SEED,
        ))
        .wait()
        .result
}

fn served_discovery(
    connector: &InProcConnector,
    case: &CaseStudy,
    encoded: &str,
) -> DiscoveryResult {
    let mut client = AidClient::connect_in_proc(connector).expect("connect");
    client
        .hello(&format!("{}-client", case.name))
        .expect("hello");
    // An awkward chunk size on purpose: chunks split lines anywhere and
    // the server-side streaming decoder must reassemble them.
    let report = client
        .upload(
            encoded.as_bytes(),
            97,
            AnalysisSpec::Case {
                name: case.name.to_string(),
            },
        )
        .expect("upload");
    assert_eq!(report.quarantined, 0, "{}: clean corpus", case.name);
    assert!(report.analyzed, "{}: corpus has failures", case.name);
    let mut spec = SubmitSpec::new(
        format!("{}/served", case.name),
        ProgramSpec::Case {
            name: case.name.to_string(),
        },
    );
    spec.runs_per_round = case.runs_per_round as u32;
    spec.first_seed = FIRST_SEED;
    spec.discovery_seed = DISCOVERY_SEED;
    let admission = client.submit(&spec).expect("submit");
    let Admission::Accepted(session) = admission else {
        panic!("{}: fresh connection was refused: {admission:?}", case.name);
    };
    let (result, _progress) = client.wait(session).expect("wait");
    client.goodbye().expect("goodbye");
    result
}

#[test]
fn served_discovery_equals_in_process_on_all_six_cases() {
    let (server, connector) = Server::start_in_proc(ServeConfig::default());
    let mut served_count = 0;
    for case in all_cases() {
        let set = collect_logs_sized(&case, 12, 12);
        let direct = direct_discovery(&case, &set);
        let served = served_discovery(&connector, &case, &codec::encode(&set));
        assert_eq!(
            served, direct,
            "{}: server-mediated discovery must equal in-process discovery",
            case.name
        );
        served_count += 1;
    }
    let stats = server.shutdown();
    assert_eq!(stats.sessions_delivered, served_count);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.rejections(), 0);
}

#[test]
fn clients_replaying_the_same_scenario_share_the_cache() {
    let (server, connector) = Server::start_in_proc(ServeConfig::default());
    let case = all_cases().remove(0);
    let set = collect_logs_sized(&case, 10, 10);
    let encoded = codec::encode(&set);

    let first = served_discovery(&connector, &case, &encoded);
    let after_first = server.stats();
    let second = served_discovery(&connector, &case, &encoded);
    let after_second = server.stats();

    assert_eq!(first, second, "replay returns the identical result");
    assert_eq!(
        after_second.executions, after_first.executions,
        "the second client re-executed nothing"
    );
    assert!(
        after_second.cache_hits > after_first.cache_hits,
        "the second client was served from the shared intervention cache"
    );
    server.shutdown();
}

/// The determinism contract extended to the synthetic lab: for one
/// scenario of each of the nine bug classes (`seed % 9` stratification,
/// seeds 1..=9), a reactor-mediated discovery — corpus uploaded in
/// chunks, job submitted as a wire `ProgramSpec::Lab`, result streamed
/// back — equals the same job run against an in-process engine, full
/// `DiscoveryResult` equality.
#[test]
fn served_discovery_equals_in_process_on_all_nine_lab_classes() {
    use aid_lab::{prepare_replay, LabParams};

    let items = prepare_replay(&LabParams::default(), 1..=9);
    let classes: std::collections::BTreeSet<_> = items
        .iter()
        .map(|i| i.scenario.spec.bug_class as usize)
        .collect();
    assert_eq!(classes.len(), 9, "seeds 1..=9 cover all nine bug classes");

    let (server, connector) = Server::start_in_proc(ServeConfig::default());
    for item in &items {
        // Direct: same corpus, same analysis config, same job knobs.
        let built = aid_lab::build(&item.scenario.spec);
        let analysis = aid_core::analyze(&item.corpus, &built.config);
        let engine = Engine::with_workers(2);
        let direct = engine
            .submit(DiscoveryJob::sim(
                format!("{}/direct", item.scenario.name),
                Arc::new(analysis.dag.clone()),
                Arc::new(Simulator::new(built.program)),
                Arc::new(analysis.extraction.catalog.clone()),
                analysis.extraction.failure,
                item.scenario.runs_per_round,
                FIRST_SEED,
                Strategy::Aid,
                DISCOVERY_SEED,
            ))
            .wait()
            .result;

        // Served: the wire path through the reactor.
        let mut client = AidClient::connect_in_proc(&connector).expect("connect");
        client.hello(&item.scenario.name).expect("hello");
        let report = client
            .upload(
                item.encoded.as_bytes(),
                97,
                AnalysisSpec::Lab(item.scenario.spec),
            )
            .expect("upload");
        assert_eq!(
            report.quarantined, 0,
            "{}: clean corpus",
            item.scenario.name
        );
        assert!(
            report.analyzed,
            "{}: corpus has failures",
            item.scenario.name
        );
        let mut spec = SubmitSpec::new(
            format!("{}/served", item.scenario.name),
            ProgramSpec::Lab(item.scenario.spec),
        );
        spec.runs_per_round = item.scenario.runs_per_round as u32;
        spec.first_seed = FIRST_SEED;
        spec.discovery_seed = DISCOVERY_SEED;
        let Admission::Accepted(session) = client.submit(&spec).expect("submit") else {
            panic!("{}: fresh connection refused", item.scenario.name);
        };
        let (served, _progress) = client.wait(session).expect("wait");
        client.goodbye().expect("goodbye");

        assert_eq!(
            served, direct,
            "{}: reactor-mediated discovery must equal in-process discovery",
            item.scenario.name
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.sessions_delivered, 9);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.rejections(), 0);
}
