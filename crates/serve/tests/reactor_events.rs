//! The reactor's event contract, observed from outside: frames arriving
//! one readiness event at a time — cut at every byte boundary — decode
//! identically to frames arriving whole, and idle connections cost
//! *zero* handler wakeups between frames (the whole point of replacing
//! the thread-per-connection read loop).

use aid_serve::{wire, AidClient, Request, Response, ServeConfig, Server};
use std::io::Write;

/// Every prefix/suffix split of a request frame — two readiness events
/// with an arbitrary cut between them — must decode to the same reply as
/// the whole frame, on one long-lived connection. Also runs the fully
/// pathological one-byte-per-event delivery.
#[test]
fn frames_split_at_every_byte_boundary_decode_identically() {
    let (server, connector) = Server::start_in_proc(ServeConfig::default());
    let mut conn = connector.connect().expect("connect");

    let frame = Request::Stats.encode();
    let expect_stats = |conn: &mut _| {
        let (kind, payload) = wire::read_frame(conn, wire::DEFAULT_MAX_FRAME_LEN)
            .expect("response frame")
            .expect("connection open");
        match Response::decode_payload(kind, &payload).expect("decodable") {
            Response::StatsOk(stats) => stats,
            other => panic!("expected StatsOk, got {other:?}"),
        }
    };

    // Whole frame first: the baseline request works.
    conn.write_all(&frame).unwrap();
    expect_stats(&mut conn);

    // Every cut point, including inside the magic, the length field, and
    // the payload (Stats has none; Hello below has one).
    for cut in 1..frame.len() {
        conn.write_all(&frame[..cut]).unwrap();
        conn.write_all(&frame[cut..]).unwrap();
        expect_stats(&mut conn);
    }

    // One byte per readiness event, with a payload-bearing request.
    let hello = Request::Hello {
        client: "byte-at-a-time".into(),
    }
    .encode();
    for byte in &hello {
        conn.write_all(std::slice::from_ref(byte)).unwrap();
    }
    let (kind, payload) = wire::read_frame(&mut conn, wire::DEFAULT_MAX_FRAME_LEN)
        .expect("hello response")
        .expect("connection open");
    match Response::decode_payload(kind, &payload).expect("decodable") {
        Response::HelloOk { .. } => {}
        other => panic!("expected HelloOk, got {other:?}"),
    }

    // Two frames fused into one write (pipelining) still answer in order.
    let mut fused = Request::Stats.encode();
    fused.extend_from_slice(&Request::Stats.encode());
    conn.write_all(&fused).unwrap();
    expect_stats(&mut conn);
    let after = expect_stats(&mut conn);

    assert_eq!(
        after.protocol_errors, 0,
        "no split was mistaken for a malformed frame"
    );
    drop(conn);
    server.shutdown();
}

/// A thousand idle connections are a thousand registered wakers — not a
/// thousand threads ticking read timeouts. Between frames the handler
/// pool is never woken: `handler_dispatches` counts exactly one dispatch
/// per request ever received through the silence.
#[test]
fn thousand_idle_connections_cost_zero_wakeups() {
    let config = ServeConfig {
        max_connections: 1100,
        ..ServeConfig::default()
    };
    let (server, connector) = Server::start_in_proc(config);

    let mut fleet = Vec::with_capacity(1000);
    for i in 0..1000 {
        let mut client = AidClient::connect_in_proc(&connector).expect("connect");
        client.hello(&format!("idler-{i}")).expect("hello");
        fleet.push(client);
    }

    // Long silence: every connection idle, none retired.
    std::thread::sleep(std::time::Duration::from_millis(300));

    let stats = fleet[0].stats().expect("still responsive after silence");
    assert_eq!(stats.active_connections, 1000);
    assert_eq!(stats.peak_connections, 1000);
    assert_eq!(
        stats.handler_dispatches, 1001,
        "1000 hellos + this stats call — the silence dispatched nothing: {stats:?}"
    );
    // The whole fleet is still live, not just the one we polled.
    for client in fleet.iter_mut().rev().take(5) {
        client.stats().expect("deep-idle connection answers");
    }

    drop(fleet);
    let final_stats = server.shutdown();
    assert_eq!(final_stats.connections, 1000);
    assert_eq!(final_stats.protocol_errors, 0);
}
