//! The Figure 8 workload generator.
//!
//! Shape of a generated application ("multi-threaded applications ranging
//! the maximum number of threads MAXt from 2 to 40 … the total number of
//! predicates N ranges from 4 to 284 … the number of causal predicates in
//! `[1, N/log N]`"):
//!
//! ```text
//! prefix chain → junction(B₁ branches) → chain → … → junction(B_J) → chain → F
//! ```
//!
//! * the thread count `T ≤ MAXt` bounds every junction's branch count
//!   (§6.3.1's `B ≤ T` argument);
//! * the true causal path follows one route from the root to F; `D` of its
//!   nodes are causal (parent-chained), the rest of the route plus a share
//!   of off-route nodes are *symptoms* (true parent = an AC-DAG ancestor,
//!   so they vanish when their cause is repaired), and the remainder is
//!   *noise* (occurs independently — prime interventional-pruning fodder).

use aid_causal::AcDag;
use aid_core::GroundTruth;
use aid_predicates::PredicateId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct SynthParams {
    /// Maximum number of threads (the Figure 8 x-axis, 2..=42).
    pub max_threads: u32,
    /// Hard cap on predicates (paper: 284).
    pub max_predicates: usize,
    /// Probability that an off-path node is a symptom (has a true cause)
    /// rather than independent noise.
    pub symptom_prob: f64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            max_threads: 8,
            max_predicates: 284,
            symptom_prob: 0.8,
        }
    }
}

/// A generated application: ground truth + its AC-DAG.
#[derive(Clone, Debug)]
pub struct SyntheticApp {
    /// True causal structure (drives the oracle executor).
    pub truth: GroundTruth,
    /// The AC-DAG handed to discovery (a superset of the truth, as §4
    /// guarantees).
    pub dag: AcDag,
    /// Threads drawn for this app (bounds the branch widths).
    pub threads: u32,
    /// Number of candidate predicates N.
    pub n: usize,
    /// Number of causal predicates D.
    pub d: usize,
}

/// Generates one synthetic application.
pub fn generate(params: &SynthParams, seed: u64) -> SyntheticApp {
    let mut rng = StdRng::seed_from_u64(seed);
    let threads = rng.random_range(2..=params.max_threads.max(2));
    let junctions = rng.random_range(1..=4usize);

    // Lay out node ids segment by segment.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut route: Vec<usize> = Vec::new();
    let mut next_id = 0usize;
    fn fresh(next_id: &mut usize, k: usize) -> Vec<usize> {
        let ids: Vec<usize> = (*next_id..*next_id + k).collect();
        *next_id += k;
        ids
    }

    // Prefix chain (always ≥1 node so a root exists).
    let prefix = fresh(&mut next_id, rng.random_range(2..=4));
    for w in prefix.windows(2) {
        edges.push((w[0], w[1]));
    }
    route.extend(&prefix);
    let mut tail = *prefix.last().expect("non-empty prefix");

    for _ in 0..junctions {
        let width_cap = threads.clamp(2, 30);
        let b = rng.random_range(2..=width_cap) as usize;
        let mut branch_tails = Vec::with_capacity(b);
        let causal_branch = rng.random_range(0..b);
        for bi in 0..b {
            let len = rng.random_range(1..=4);
            if next_id + len > params.max_predicates {
                // Respect the paper's N cap; degrade to a thin branch.
                let ids = fresh(&mut next_id, 1);
                edges.push((tail, ids[0]));
                branch_tails.push(ids[0]);
                if bi == causal_branch {
                    route.extend(&ids);
                }
                continue;
            }
            let ids = fresh(&mut next_id, len);
            edges.push((tail, ids[0]));
            for w in ids.windows(2) {
                edges.push((w[0], w[1]));
            }
            branch_tails.push(*ids.last().unwrap());
            if bi == causal_branch {
                route.extend(&ids);
            }
        }
        // Merge into an inter-junction chain node.
        let merge = fresh(&mut next_id, rng.random_range(1..=3));
        for &bt in &branch_tails {
            edges.push((bt, merge[0]));
        }
        for w in merge.windows(2) {
            edges.push((w[0], w[1]));
        }
        route.extend(&merge);
        tail = *merge.last().unwrap();
    }

    let n = next_id;
    let f = n; // failure id
    edges.push((tail, f));

    // Choose D causal nodes along the route.
    let n_f = n as f64;
    let d_max_paper = (n_f / n_f.log2().max(1.0)).floor().max(1.0) as usize;
    let d = rng.random_range(1..=d_max_paper).min(route.len()).max(1);
    // The causal path starts at the route head (the root cause has no
    // cause) and runs down the route as a mostly-contiguous effect chain
    // with occasional gaps — real root causes trigger their immediate
    // effects back to back ("a fixed sequence of intermediate predicates",
    // Assumption 2), with unrelated symptoms interleaved here and there.
    let mut chosen: Vec<usize> = vec![0];
    let mut pos = 0usize;
    while chosen.len() < d {
        let gap = if rng.random_bool(0.7) {
            1
        } else {
            rng.random_range(2..=4usize)
        };
        pos += gap;
        if pos >= route.len() {
            break;
        }
        chosen.push(pos);
    }
    let path: Vec<usize> = chosen.iter().map(|&i| route[i]).collect();

    // True parents: path nodes chain; other route nodes hang off the
    // nearest preceding path node; off-route nodes are symptoms of a random
    // AC-DAG ancestor or noise.
    let candidates: Vec<PredicateId> = (0..n).map(|i| PredicateId::from_raw(i as u32)).collect();
    let failure = PredicateId::from_raw(n as u32);
    let dag = AcDag::from_edges(&candidates, failure, &to_pred_edges(&edges));

    let mut parent: Vec<Option<usize>> = vec![None; n];
    for w in path.windows(2) {
        parent[w[1]] = Some(w[0]);
    }
    let on_path = |x: usize| path.contains(&x);
    // Route symptoms.
    let mut last_path: Option<usize> = None;
    for &r in &route {
        if on_path(r) {
            last_path = Some(r);
        } else if let Some(lp) = last_path {
            parent[r] = Some(lp);
        }
    }
    // Off-route nodes.
    let route_set: std::collections::BTreeSet<usize> = route.iter().copied().collect();
    for (x, px) in parent.iter_mut().enumerate() {
        if route_set.contains(&x) {
            continue;
        }
        if rng.random_bool(params.symptom_prob) {
            let ancestors: Vec<usize> = (0..n)
                .filter(|&a| {
                    a != x
                        && dag.reaches(
                            PredicateId::from_raw(a as u32),
                            PredicateId::from_raw(x as u32),
                        )
                })
                .collect();
            if !ancestors.is_empty() {
                *px = Some(ancestors[rng.random_range(0..ancestors.len())]);
            }
        }
    }

    let truth = GroundTruth { n, parent, path };
    truth.validate();
    let d = truth.path.len();
    SyntheticApp {
        truth,
        dag,
        threads,
        n,
        d,
    }
}

fn to_pred_edges(edges: &[(usize, usize)]) -> Vec<(PredicateId, PredicateId)> {
    edges
        .iter()
        .map(|&(a, b)| {
            (
                PredicateId::from_raw(a as u32),
                PredicateId::from_raw(b as u32),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_core::{discover, OracleExecutor, Strategy};

    #[test]
    fn generated_apps_respect_paper_ranges() {
        for maxt in [2u32, 10, 26, 42] {
            let params = SynthParams {
                max_threads: maxt,
                ..Default::default()
            };
            for seed in 0..40 {
                let app = generate(&params, seed);
                assert!(app.n >= 4, "N ≥ 4 (got {} at maxt {maxt})", app.n);
                assert!(app.n <= 284, "N ≤ 284 (got {})", app.n);
                assert!(app.threads >= 2 && app.threads <= maxt.max(2));
                assert!(app.d >= 1);
                let bound = (app.n as f64 / (app.n as f64).log2()).floor() as usize;
                assert!(app.d <= bound.max(1), "D={} bound={}", app.d, bound);
            }
        }
    }

    #[test]
    fn truth_is_consistent_with_dag() {
        // Every true-cause edge must be an AC-DAG reachability (§4: the
        // AC-DAG over-approximates the true causal graph).
        let params = SynthParams::default();
        for seed in 0..30 {
            let app = generate(&params, seed);
            for (q, p) in app.truth.parent.iter().enumerate() {
                if let Some(p) = p {
                    assert!(
                        app.dag.reaches(
                            PredicateId::from_raw(*p as u32),
                            PredicateId::from_raw(q as u32)
                        ),
                        "seed {seed}: true edge {p}→{q} missing from AC-DAG"
                    );
                }
            }
            // The path's last node reaches F.
            let last = *app.truth.path.last().unwrap();
            assert!(app
                .dag
                .reaches(PredicateId::from_raw(last as u32), app.truth.failure()));
        }
    }

    #[test]
    fn all_strategies_recover_ground_truth_on_generated_apps() {
        let params = SynthParams {
            max_threads: 12,
            ..Default::default()
        };
        for seed in 0..15 {
            let app = generate(&params, seed);
            let expected: Vec<u32> = app.truth.path_ids().iter().map(|p| p.raw()).collect();
            for strategy in Strategy::PAPER_SET {
                let mut exec = OracleExecutor::new(app.truth.clone());
                let r = discover(&app.dag, &mut exec, strategy, seed);
                let mut got: Vec<u32> = r.causal.iter().map(|p| p.raw()).collect();
                got.sort();
                let mut want = expected.clone();
                want.sort();
                assert_eq!(got, want, "{} seed {seed}", strategy.name());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let params = SynthParams::default();
        let a = generate(&params, 99);
        let b = generate(&params, 99);
        assert_eq!(a.truth.parent, b.truth.parent);
        assert_eq!(a.truth.path, b.truth.path);
        assert_eq!(a.n, b.n);
    }
}
