//! Synthetic failing applications with known root causes (Section 7.2).
//!
//! The Figure 8 benchmark generates applications parameterized by the
//! maximum thread count `MAXt ∈ [2, 42]`: each application has an AC-DAG
//! shaped like a concurrent program (junction blocks whose branch counts
//! are bounded by the thread count), a ground-truth causal path, and
//! symptom/noise predicates hanging off it. Discovery runs against the
//! exact-counterfactual [`aid_core::OracleExecutor`]; [`compile`] can also
//! lower a (small) ground truth to a real `aid-sim` program to validate the
//! whole pipeline end to end.

pub mod compile;
pub mod generate;

pub use compile::{
    compile_to_program, compile_to_program_with_cost, symptom_lineages, CompiledApp,
    MAX_SYMPTOM_LINEAGES,
};
pub use generate::{generate, SynthParams, SyntheticApp};
