//! Lowering a ground truth to a real `aid-sim` program.
//!
//! This closes the loop: a synthetic causal structure becomes an actual
//! program whose traces, predicates, AC-DAG and interventions all flow
//! through the production pipeline. The encoding keeps every node method
//! *pure* so return-value interventions are safe:
//!
//! * the root method draws an "infection" bit from the program RNG (the
//!   intermittent nondeterminism) into the spine register and returns it;
//! * each causal-path method propagates the spine register;
//! * each symptom method copies its cause's register into its lineage's
//!   scratch register (observably wrong when infected) without touching
//!   the spine;
//! * noise nodes mirror the spine directly (discriminative but harmless);
//! * a final `Check` method throws iff the spine is infected.
//!
//! Every node yields a fully-discriminative `WrongReturn` predicate whose
//! `ForceReturn(0)` repair zeroes exactly its own register — breaking its
//! downstream propagation and nothing else, which matches the oracle's
//! counterfactual semantics. Register pressure limits the encoding to
//! ground truths with ≤ 12 distinct symptom lineages; the generator's
//! oracle path has no such limit.

use aid_core::GroundTruth;
use aid_sim::program::{Cmp, Expr, Reg};
use aid_sim::{Program, ProgramBuilder};
use aid_trace::MethodId;

/// A compiled synthetic application.
#[derive(Clone, Debug)]
pub struct CompiledApp {
    /// The runnable program.
    pub program: Program,
    /// Method id of each ground-truth node (index = node id).
    pub node_methods: Vec<MethodId>,
    /// The method that throws the failure.
    pub check_method: MethodId,
}

/// Scratch registers available to `compile_to_program` (16 registers minus
/// the spine minus the builder-reserved ones).
pub const MAX_SYMPTOM_LINEAGES: usize = 12;

/// Number of distinct symptom lineages the encoding needs a scratch
/// register for: off-path nodes whose cause is either absent (noise) or on
/// the causal spine — every such node roots a lineage whose descendants
/// share its register. Ground truths with more than
/// [`MAX_SYMPTOM_LINEAGES`] lineages cannot be compiled; generators that
/// need runnable programs (the engine's Figure-8 workload) filter with
/// this before calling [`compile_to_program`].
pub fn symptom_lineages(truth: &GroundTruth) -> usize {
    let on_path: std::collections::BTreeSet<usize> = truth.path.iter().copied().collect();
    (0..truth.n)
        .filter(|x| !on_path.contains(x))
        .filter(|&x| match truth.parent[x] {
            None => true,
            Some(p) => on_path.contains(&p),
        })
        .count()
}

/// Compiles a ground truth into a runnable program. The root misbehaves in
/// roughly half the runs (an intermittent failure). Panics if the structure
/// needs more than [`MAX_SYMPTOM_LINEAGES`] scratch registers (one per
/// symptom lineage; check with [`symptom_lineages`] first).
pub fn compile_to_program(truth: &GroundTruth) -> CompiledApp {
    compile_to_program_with_cost(truth, 2)
}

/// [`compile_to_program`] with an explicit per-node compute cost (virtual
/// ticks each node method burns). The default of 2 keeps unit tests fast;
/// throughput workloads (the engine benches) raise it so a re-execution
/// costs what a real service call would, making cache-hit economics
/// realistic rather than dominated by per-round bookkeeping.
pub fn compile_to_program_with_cost(truth: &GroundTruth, node_cost: u64) -> CompiledApp {
    truth.validate();
    assert!(
        symptom_lineages(truth) <= MAX_SYMPTOM_LINEAGES,
        "too many symptom lineages for 16 registers: {} > {}",
        symptom_lineages(truth),
        MAX_SYMPTOM_LINEAGES
    );
    let mut b = ProgramBuilder::new("synthetic");

    // Register assignment: the causal path shares the spine register R0;
    // every off-path lineage gets a scratch register.
    let spine = Reg(0);
    let mut reg_of: Vec<Option<Reg>> = vec![None; truth.n];
    for &p in &truth.path {
        reg_of[p] = Some(spine);
    }
    let order = forest_topo_order(truth);
    let mut next_reg = 1u8;
    for &x in &order {
        if reg_of[x].is_some() {
            continue;
        }
        let r = match truth.parent[x] {
            Some(p) => {
                let pr = reg_of[p].expect("parent assigned first");
                if pr == spine {
                    let r = Reg(next_reg);
                    next_reg += 1;
                    assert!(next_reg <= 13, "too many symptom lineages for 16 registers");
                    r
                } else {
                    pr
                }
            }
            None => {
                let r = Reg(next_reg);
                next_reg += 1;
                assert!(next_reg <= 13, "too many symptom lineages for 16 registers");
                r
            }
        };
        reg_of[x] = Some(r);
    }

    let root = truth.path[0];
    let mut node_methods: Vec<(usize, MethodId)> = Vec::with_capacity(truth.n);
    let mut call_order = Vec::with_capacity(truth.n + 1);
    for &x in &order {
        let reg = reg_of[x].unwrap();
        let parent_reg = truth.parent[x].map(|p| reg_of[p].unwrap());
        let name = format!("Node{x}");
        let m = b.pure_method(&name, |mb| {
            mb.compute(node_cost);
            if x == root {
                // The intermittent root cause: infected in ~half the runs.
                mb.rand_range(reg, 0, 1);
            } else if let Some(pr) = parent_reg {
                mb.set(reg, Expr::Reg(pr));
            } else {
                // Noise: mirrors the spine so it is fully discriminative,
                // but repairing it repairs nothing.
                mb.set(reg, Expr::Reg(spine));
            }
            mb.ret(Expr::Reg(reg));
        });
        node_methods.push((x, m));
        call_order.push(m);
    }

    let check = b.method("Check", |mb| {
        mb.compute(1)
            .throw_if(Expr::Reg(spine), Cmp::Eq, Expr::Const(1), "SynthFailure");
    });
    let main = b.method("Main", |mb| {
        for m in &call_order {
            mb.call(*m);
        }
        mb.call(check);
    });
    b.thread("main", main, true);

    let program = b.build();
    node_methods.sort_by_key(|&(x, _)| x);
    CompiledApp {
        program,
        node_methods: node_methods.into_iter().map(|(_, m)| m).collect(),
        check_method: check,
    }
}

/// Topological order of the parent forest (parents first, root's tree
/// first so the spine register is live before anyone mirrors it).
fn forest_topo_order(truth: &GroundTruth) -> Vec<usize> {
    fn visit(x: usize, truth: &GroundTruth, visited: &mut [bool], order: &mut Vec<usize>) {
        if visited[x] {
            return;
        }
        if let Some(p) = truth.parent[x] {
            visit(p, truth, visited, order);
        }
        visited[x] = true;
        order.push(x);
    }
    let mut order = Vec::with_capacity(truth.n);
    let mut visited = vec![false; truth.n];
    visit(truth.path[0], truth, &mut visited, &mut order);
    for x in 0..truth.n {
        visit(x, truth, &mut visited, &mut order);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_core::{discover, figure4_ground_truth, Strategy};
    use aid_predicates::ExtractionConfig;
    use aid_sim::{SimExecutor, Simulator};

    #[test]
    fn symptom_lineages_counts_scratch_roots() {
        let truth = figure4_ground_truth();
        // Off-path roots: P7 (parent P1 on path), P3 (parent P2 on path) —
        // their subtrees {P8, P9} and {P4, P5, P6, P10} share the root's
        // register, so exactly 2 lineages.
        assert_eq!(symptom_lineages(&truth), 2);
        assert!(symptom_lineages(&truth) <= MAX_SYMPTOM_LINEAGES);
    }

    #[test]
    fn compiled_program_fails_intermittently() {
        let truth = figure4_ground_truth();
        let app = compile_to_program(&truth);
        let sim = Simulator::new(app.program);
        let set = sim.collect(100);
        let (ok, fail) = set.counts();
        assert!(ok > 20 && fail > 20, "≈50/50 split, got {ok}/{fail}");
    }

    #[test]
    fn full_pipeline_on_compiled_program_recovers_the_path() {
        let truth = figure4_ground_truth();
        let app = compile_to_program(&truth);
        let sim = Simulator::new(app.program.clone());
        let set = sim.collect_balanced(40, 40, 4000);
        let mut cfg = ExtractionConfig::default();
        for m in app.program.pure_methods() {
            cfg.pure_methods.insert(m);
        }
        let analysis = aid_core::analyze(&set, &cfg);
        // One WrongReturn predicate per node, plus the exception symptoms of
        // the crash site (`Check` throws, and the exception escapes `Main`).
        assert!(
            analysis.sd_predicate_count() >= truth.n,
            "every node is fully discriminative: {} < {}",
            analysis.sd_predicate_count(),
            truth.n
        );
        let mut exec = SimExecutor::new(
            sim,
            analysis.extraction.catalog.clone(),
            analysis.extraction.failure,
            10,
            1_000_000,
        );
        let r = discover(&analysis.dag, &mut exec, Strategy::Aid, 3);
        // The discovered causal chain must be the spine's WrongReturn
        // predicates in order, optionally followed by the crash-site
        // MethodFails predicates (catching the exception also repairs the
        // failure — the paper's Npgsql path likewise ends in "throws
        // IndexOutOfRange" → "application fails to handle it").
        let mut wrong_return_methods = Vec::new();
        for &p in &r.causal {
            match &analysis.extraction.catalog.get(p).kind {
                aid_predicates::PredicateKind::WrongReturn { site, .. } => {
                    wrong_return_methods.push(site.method.raw());
                }
                aid_predicates::PredicateKind::MethodFails { kind, .. } => {
                    assert_eq!(kind, "SynthFailure");
                }
                other => panic!("unexpected causal predicate {other:?}"),
            }
        }
        let expected: Vec<u32> = truth
            .path
            .iter()
            .map(|&x| app.node_methods[x].raw())
            .collect();
        assert_eq!(
            wrong_return_methods, expected,
            "pipeline must find P1→P2→P11"
        );
    }
}
