//! Evaluating a predicate catalog against a single trace.
//!
//! This is the *only* place predicate truth is decided: the extractor uses
//! it to build the initial observation matrix, and executors reuse it on
//! intervention runs, so "P was observed in run r" means exactly the same
//! thing in both phases.

use crate::model::{MethodInstance, PredicateCatalog, PredicateId, PredicateKind};
use aid_trace::{AccessKind, MethodEvent, Outcome, Time, Trace};
use aid_util::DenseBitSet;
use std::collections::BTreeMap;

/// Truth values plus observation windows for every catalog predicate in one
/// run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunObservation {
    /// Whether the run failed (with any signature).
    pub failed: bool,
    /// Which predicates held.
    pub observed: DenseBitSet,
    /// For each held predicate, the `[lo, hi]` window in which it held.
    pub windows: Vec<Option<(Time, Time)>>,
}

impl RunObservation {
    /// Whether predicate `p` held in this run.
    pub fn holds(&self, p: PredicateId) -> bool {
        self.observed.contains(p.index())
    }

    /// Assembles an observation from per-predicate windows (the truth bitset
    /// is exactly "the window exists"). [`evaluate`] and incremental
    /// re-evaluators (`aid_store`) share this so the two can never disagree
    /// about what "observed" means.
    pub fn from_windows(failed: bool, windows: Vec<Option<(Time, Time)>>) -> RunObservation {
        let mut observed = DenseBitSet::new(windows.len());
        for (i, w) in windows.iter().enumerate() {
            if w.is_some() {
                observed.insert(i);
            }
        }
        RunObservation {
            failed,
            observed,
            windows,
        }
    }
}

/// Fast lookup of a trace's events by `(method, instance)`.
pub struct TraceIndex<'t> {
    by_site: BTreeMap<(u32, u32), &'t MethodEvent>,
}

impl<'t> TraceIndex<'t> {
    /// Builds the index.
    pub fn new(trace: &'t Trace) -> Self {
        let mut by_site = BTreeMap::new();
        for e in &trace.events {
            by_site.insert((e.method.raw(), e.instance), e);
        }
        TraceIndex { by_site }
    }

    /// The event for a method instance, if it occurred.
    pub fn event(&self, site: &MethodInstance) -> Option<&'t MethodEvent> {
        self.by_site
            .get(&(site.method.raw(), site.instance))
            .copied()
    }
}

/// Evaluates every predicate in `catalog` against `trace`.
pub fn evaluate(catalog: &PredicateCatalog, trace: &Trace) -> RunObservation {
    let mut windows: Vec<Option<(Time, Time)>> = Vec::with_capacity(catalog.len());
    evaluate_extend(catalog, trace, &mut windows);
    RunObservation::from_windows(trace.outcome.is_failure(), windows)
}

/// Extends `windows` — whose length marks how many catalog predicates are
/// already evaluated for `trace` — with the windows of every remaining
/// predicate, in id order. Incremental consumers append new catalog entries
/// and call this per stored trace instead of re-evaluating the full catalog;
/// [`evaluate`] itself is `evaluate_extend` from an empty prefix, so the two
/// paths are identical by construction.
pub fn evaluate_extend(
    catalog: &PredicateCatalog,
    trace: &Trace,
    windows: &mut Vec<Option<(Time, Time)>>,
) {
    debug_assert!(windows.len() <= catalog.len(), "windows beyond catalog");
    if windows.len() == catalog.len() {
        return;
    }
    let idx = TraceIndex::new(trace);
    for i in windows.len()..catalog.len() {
        let pred = catalog.get(crate::model::PredicateId::from_raw(i as u32));
        let window = match &pred.kind {
            PredicateKind::DataRace { a, b, object } => match (idx.event(a), idx.event(b)) {
                (Some(ea), Some(eb)) => data_race_witness(ea, eb, object.raw()),
                _ => None,
            },
            PredicateKind::MethodFails { site, kind } => idx.event(site).and_then(|e| {
                (e.exception.as_deref() == Some(kind.as_str()) && !e.caught)
                    .then_some((e.start, e.end))
            }),
            PredicateKind::RunsTooSlow { site, threshold } => idx
                .event(site)
                .and_then(|e| (e.duration() > *threshold).then_some((e.start, e.end))),
            PredicateKind::RunsTooFast { site, threshold } => idx
                .event(site)
                .and_then(|e| (e.duration() < *threshold).then_some((e.start, e.end))),
            PredicateKind::WrongReturn { site, expected } => {
                idx.event(site).and_then(|e| match e.returned {
                    Some(v) if v != *expected => Some((e.start, e.end)),
                    _ => None,
                })
            }
            PredicateKind::OrderViolation { first, second, .. } => {
                match (idx.event(first), idx.event(second)) {
                    (Some(ef), Some(es)) if ef.end >= es.start => {
                        Some((es.start.min(ef.end), ef.end.max(es.start)))
                    }
                    _ => None,
                }
            }
            PredicateKind::ValueCollision { a, b } => match (idx.event(a), idx.event(b)) {
                (Some(ea), Some(eb)) => match (ea.returned, eb.returned) {
                    (Some(x), Some(y)) if x == y => {
                        let at = ea.end.max(eb.end);
                        Some((at, at))
                    }
                    _ => None,
                },
                _ => None,
            },
            PredicateKind::Conjunction { lhs, rhs } => {
                // Conjunct ids are smaller, so their entries are final.
                match (windows[lhs.index()], windows[rhs.index()]) {
                    (Some((l0, l1)), Some((r0, r1))) => Some((l0.min(r0), l1.max(r1))),
                    _ => None,
                }
            }
            PredicateKind::Failure { signature } => match &trace.outcome {
                Outcome::Failure(sig) if sig == signature => Some((trace.duration, trace.duration)),
                _ => None,
            },
        };
        windows.push(window);
    }
}

/// A data race witness: a conflicting, unlocked, cross-thread access pair on
/// `object` where the write lands inside the other execution's window.
/// Returns the access-pair window.
fn data_race_witness(ea: &MethodEvent, eb: &MethodEvent, object: u32) -> Option<(Time, Time)> {
    if ea.thread == eb.thread {
        return None;
    }
    for x in ea
        .accesses
        .iter()
        .filter(|a| a.object.raw() == object && !a.locked)
    {
        for y in eb
            .accesses
            .iter()
            .filter(|a| a.object.raw() == object && !a.locked)
        {
            let conflicting = x.kind == AccessKind::Write || y.kind == AccessKind::Write;
            if !conflicting {
                continue;
            }
            let write_in_window =
                (x.kind == AccessKind::Write && eb.start <= x.at && x.at <= eb.end)
                    || (y.kind == AccessKind::Write && ea.start <= y.at && y.at <= ea.end);
            if write_in_window {
                return Some((x.at.min(y.at), x.at.max(y.at)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Predicate, PredicateCatalog};
    use aid_trace::{AccessEvent, FailureSignature, MethodId, ThreadId};

    fn event(m: u32, inst: u32, th: u32, start: Time, end: Time) -> MethodEvent {
        MethodEvent {
            method: MethodId::from_raw(m),
            instance: inst,
            thread: ThreadId::from_raw(th),
            start,
            end,
            accesses: vec![],
            returned: None,
            exception: None,
            caught: false,
        }
    }

    fn trace(events: Vec<MethodEvent>, failed: bool) -> Trace {
        let outcome = if failed {
            Outcome::Failure(FailureSignature {
                kind: "Boom".into(),
                method: MethodId::from_raw(0),
            })
        } else {
            Outcome::Success
        };
        Trace {
            seed: 0,
            events,
            msgs: vec![],
            outcome,
            duration: 1000,
        }
    }

    fn site(m: u32, i: u32) -> MethodInstance {
        MethodInstance::new(MethodId::from_raw(m), i)
    }

    fn insert(c: &mut PredicateCatalog, kind: PredicateKind) -> PredicateId {
        c.insert(Predicate {
            kind,
            safe: true,
            action: None,
        })
    }

    #[test]
    fn slow_fast_and_wrong_return() {
        let mut c = PredicateCatalog::new();
        let slow = insert(
            &mut c,
            PredicateKind::RunsTooSlow {
                site: site(0, 0),
                threshold: 50,
            },
        );
        let fast = insert(
            &mut c,
            PredicateKind::RunsTooFast {
                site: site(0, 0),
                threshold: 10,
            },
        );
        let wrong = insert(
            &mut c,
            PredicateKind::WrongReturn {
                site: site(0, 0),
                expected: 7,
            },
        );
        let mut e = event(0, 0, 0, 100, 200); // duration 100 > 50
        e.returned = Some(9);
        let obs = evaluate(&c, &trace(vec![e], false));
        assert!(obs.holds(slow));
        assert!(!obs.holds(fast));
        assert!(obs.holds(wrong));
        assert_eq!(obs.windows[slow.index()], Some((100, 200)));
    }

    #[test]
    fn order_violation_holds_only_when_inverted() {
        let mut c = PredicateCatalog::new();
        let p = insert(
            &mut c,
            PredicateKind::OrderViolation {
                first: site(0, 0),
                second: site(1, 0),
                object: None,
            },
        );
        // first ends (20) before second starts (30): expected order, no hold.
        let ok = trace(vec![event(0, 0, 0, 10, 20), event(1, 0, 1, 30, 40)], false);
        assert!(!evaluate(&c, &ok).holds(p));
        // second starts (15) before first ends (20): violation.
        let bad = trace(vec![event(0, 0, 0, 10, 20), event(1, 0, 1, 15, 40)], true);
        let obs = evaluate(&c, &bad);
        assert!(obs.holds(p));
        assert_eq!(obs.windows[p.index()], Some((15, 20)));
    }

    #[test]
    fn data_race_requires_unlocked_write_in_window() {
        let mut c = PredicateCatalog::new();
        let p = insert(
            &mut c,
            PredicateKind::DataRace {
                a: site(0, 0),
                b: site(1, 0),
                object: aid_trace::ObjectId::from_raw(5),
            },
        );
        let mut reader = event(0, 0, 0, 10, 50);
        reader.accesses.push(AccessEvent {
            object: aid_trace::ObjectId::from_raw(5),
            kind: AccessKind::Read,
            at: 45,
            locked: false,
        });
        let mut writer = event(1, 0, 1, 20, 30);
        writer.accesses.push(AccessEvent {
            object: aid_trace::ObjectId::from_raw(5),
            kind: AccessKind::Write,
            at: 25,
            locked: false,
        });
        let obs = evaluate(&c, &trace(vec![reader.clone(), writer.clone()], true));
        assert!(obs.holds(p), "write at 25 inside reader window [10,50]");

        // Locked accesses do not race.
        writer.accesses[0].locked = true;
        let obs = evaluate(&c, &trace(vec![reader.clone(), writer.clone()], true));
        assert!(!obs.holds(p));

        // A write outside the other window does not race.
        writer.accesses[0].locked = false;
        writer.start = 60;
        writer.end = 70;
        writer.accesses[0].at = 65;
        let obs = evaluate(&c, &trace(vec![reader, writer], true));
        assert!(!obs.holds(p));
    }

    #[test]
    fn conjunction_and_failure() {
        let mut c = PredicateCatalog::new();
        let a = insert(
            &mut c,
            PredicateKind::RunsTooSlow {
                site: site(0, 0),
                threshold: 5,
            },
        );
        let b = insert(
            &mut c,
            PredicateKind::MethodFails {
                site: site(1, 0),
                kind: "Boom".into(),
            },
        );
        let both = c.conjoin(a, b);
        let f = insert(
            &mut c,
            PredicateKind::Failure {
                signature: FailureSignature {
                    kind: "Boom".into(),
                    method: MethodId::from_raw(0),
                },
            },
        );
        let mut e1 = event(0, 0, 0, 0, 100);
        let mut e2 = event(1, 0, 1, 50, 60);
        e2.exception = Some("Boom".into());
        let obs = evaluate(&c, &trace(vec![e1.clone(), e2], true));
        assert!(obs.holds(both));
        assert!(obs.holds(f));
        assert_eq!(obs.windows[both.index()], Some((0, 100)));

        // Drop one conjunct: the conjunction no longer holds.
        e1.end = 3; // not slow
        let e2ok = event(1, 0, 1, 50, 60);
        let obs = evaluate(&c, &trace(vec![e1, e2ok], false));
        assert!(!obs.holds(both));
        assert!(!obs.holds(f), "successful run has no failure predicate");
    }
}
