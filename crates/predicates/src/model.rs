//! The predicate model: Figure 2's taxonomy plus compound predicates.
//!
//! A predicate is a boolean statement about one run of the program ("there
//! is a data race between `TryGetValue#0` and `GetOrAdd#0` on `_nextSlot`",
//! "`Commit#0` throws", "`Task#2` runs too slow"). Each predicate knows how
//! to evaluate itself against a trace (see [`crate::eval`]), the *time
//! window* in which it held (for temporal precedence), and how it can be
//! repaired by fault injection ([`InterventionAction`], Figure 2 column 3).
//!
//! Dynamic method executions are identified as `(method, instance)` pairs —
//! the paper's treatment of loops/repeated calls as separate predicates
//! (Section 4).

use aid_trace::{FailureSignature, MethodId, ObjectId, Time};
use aid_util::{Id, IdArena};
use serde::{Deserialize, Serialize};

/// Tag for predicate ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredicateTag;
/// Identifies a predicate in a [`PredicateCatalog`].
pub type PredicateId = Id<PredicateTag>;

/// A dynamic method execution: the k-th run of a static method within a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MethodInstance {
    /// The static method.
    pub method: MethodId,
    /// 0-based dynamic index within a run.
    pub instance: u32,
}

impl MethodInstance {
    /// Shorthand constructor.
    pub fn new(method: MethodId, instance: u32) -> Self {
        MethodInstance { method, instance }
    }
}

impl std::fmt::Display for MethodInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}#{}", self.method.raw(), self.instance)
    }
}

/// What a predicate asserts about a run (Figure 2 column 1/2).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PredicateKind {
    /// `a` and `b` make conflicting, unlocked, cross-thread accesses to
    /// `object`, with the conflicting write landing inside the other
    /// execution's time window.
    DataRace {
        /// One racing execution (canonically the smaller).
        a: MethodInstance,
        /// The other racing execution.
        b: MethodInstance,
        /// The object raced on.
        object: ObjectId,
    },
    /// The execution throws `kind` (uncaught at its boundary).
    MethodFails {
        /// The failing execution.
        site: MethodInstance,
        /// Exception kind.
        kind: String,
    },
    /// Duration exceeds the maximum seen in any successful run.
    RunsTooSlow {
        /// The slow execution.
        site: MethodInstance,
        /// Max duration among successful runs (the threshold).
        threshold: Time,
    },
    /// Duration is below the minimum seen in any successful run.
    RunsTooFast {
        /// The fast execution.
        site: MethodInstance,
        /// Min duration among successful runs (the threshold).
        threshold: Time,
    },
    /// Return value differs from the unique value seen in successful runs.
    WrongReturn {
        /// The misbehaving execution.
        site: MethodInstance,
        /// The value every successful run returned.
        expected: i64,
    },
    /// In every successful run `first` ends before `second` starts; this
    /// predicate holds when that order is violated. When `object` is set the
    /// violation is a use-after-free on that object (the "use" is `first`,
    /// the "free" is `second`).
    OrderViolation {
        /// Execution that should finish first.
        first: MethodInstance,
        /// Execution that should start after `first` ends.
        second: MethodInstance,
        /// Object linking the pair (use-after-free flavour), if any.
        object: Option<ObjectId>,
    },
    /// Two executions return the same value where successful runs return
    /// distinct values (e.g. two components drawing the same "random" id).
    ValueCollision {
        /// One execution.
        a: MethodInstance,
        /// The other execution.
        b: MethodInstance,
    },
    /// Conjunction of two predicates (compound predicate, §3.2): models
    /// root causes that only fire when two conditions co-occur.
    Conjunction {
        /// First conjunct (must have a smaller id).
        lhs: PredicateId,
        /// Second conjunct (must have a smaller id).
        rhs: PredicateId,
    },
    /// The failure indicator F: the run ended with this signature.
    Failure {
        /// The grouped failure signature.
        signature: FailureSignature,
    },
}

/// How fault injection repairs a predicate (Figure 2 column 3), in the
/// neutral vocabulary shared by executors. `aid-sim` converts these to
/// concrete machine interventions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterventionAction {
    /// Put a lock around both methods' bodies.
    Serialize {
        /// First racing method.
        a: MethodId,
        /// Second racing method.
        b: MethodId,
    },
    /// Wrap the execution in a try/catch.
    Catch {
        /// Target execution.
        site: MethodInstance,
    },
    /// Insert delay before the method returns (repairs "runs too fast").
    SlowDown {
        /// Target execution.
        site: MethodInstance,
        /// How much delay to insert.
        ticks: Time,
    },
    /// Return the successful-run value immediately (repairs "runs too slow"
    /// for pure methods).
    PrematureReturn {
        /// Target execution.
        site: MethodInstance,
        /// Value returned in successful runs.
        value: i64,
    },
    /// Suppress transient-fault handling delays (repairs "runs too slow"
    /// for impure methods whose slowness is fault-induced).
    SuppressFlaky {
        /// Target execution.
        site: MethodInstance,
    },
    /// Alter the return value to the successful-run value.
    ForceReturn {
        /// Target execution.
        site: MethodInstance,
        /// Correct value.
        value: i64,
    },
    /// Hold back `second` until `first` has completed.
    ForceOrder {
        /// Must complete first.
        first: MethodInstance,
        /// Held back.
        second: MethodInstance,
    },
    /// Force an application-level random draw to a fixed value (repairs
    /// random misbehaviour at a single site).
    ForceRand {
        /// Target execution.
        site: MethodInstance,
        /// Forced value.
        value: i64,
    },
    /// Pin two random draws to known-distinct values (repairs value
    /// collisions deterministically; pinning only one side would leave a
    /// residual collision probability).
    ForceRandPair {
        /// First draw site.
        a: MethodInstance,
        /// Value for the first site.
        a_value: i64,
        /// Second draw site.
        b: MethodInstance,
        /// Value for the second site (≠ `a_value`).
        b_value: i64,
    },
    /// Repair a conjunction by repairing one conjunct.
    Either {
        /// Preferred conjunct's action.
        primary: Box<InterventionAction>,
        /// Fallback conjunct's action.
        secondary: Box<InterventionAction>,
    },
}

/// A predicate plus its repair metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// What it asserts.
    pub kind: PredicateKind,
    /// Whether intervening on it is free of side effects (§3.3). Unsafe
    /// predicates are removed before the AC-DAG is built.
    pub safe: bool,
    /// How to repair it (`None` when no mechanism exists).
    pub action: Option<InterventionAction>,
}

/// An interned, deduplicated set of predicates. Ids are dense and assigned
/// in first-insertion order, which extraction keeps deterministic.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PredicateCatalog {
    arena: IdArena<PredicateKind, PredicateTag>,
    meta: Vec<Predicate>,
}

impl PredicateCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or finds) a predicate; metadata from the first insertion
    /// wins.
    pub fn insert(&mut self, p: Predicate) -> PredicateId {
        let id = self.arena.intern(p.kind.clone());
        if id.index() == self.meta.len() {
            self.meta.push(p);
        }
        id
    }

    /// Looks up a predicate id by kind.
    pub fn find(&self, kind: &PredicateKind) -> Option<PredicateId> {
        self.arena.get(kind)
    }

    /// Resolves an id.
    pub fn get(&self, id: PredicateId) -> &Predicate {
        &self.meta[id.index()]
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Iterates `(id, predicate)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PredicateId, &Predicate)> {
        self.meta
            .iter()
            .enumerate()
            .map(|(i, p)| (PredicateId::from_raw(i as u32), p))
    }

    /// Adds a conjunction of two existing predicates (compound predicate).
    /// The compound is safe iff intervening on either conjunct is safe; its
    /// action repairs the preferred intervenable conjunct.
    pub fn conjoin(&mut self, lhs: PredicateId, rhs: PredicateId) -> PredicateId {
        assert!(lhs.index() < self.meta.len() && rhs.index() < self.meta.len());
        let (lo, hi) = if lhs <= rhs { (lhs, rhs) } else { (rhs, lhs) };
        let l = self.get(lo).clone();
        let r = self.get(hi).clone();
        let action = match (l.action.clone(), r.action.clone()) {
            (Some(a), Some(b)) => Some(InterventionAction::Either {
                primary: Box::new(a),
                secondary: Box::new(b),
            }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        self.insert(Predicate {
            kind: PredicateKind::Conjunction { lhs: lo, rhs: hi },
            safe: (l.safe && l.action.is_some()) || (r.safe && r.action.is_some()),
            action,
        })
    }

    /// Renders a predicate for humans, resolving names through the trace
    /// set's arenas.
    pub fn describe(&self, id: PredicateId, set: &aid_trace::TraceSet) -> String {
        let mname = |mi: &MethodInstance| format!("{}#{}", set.method_name(mi.method), mi.instance);
        match &self.get(id).kind {
            PredicateKind::DataRace { a, b, object } => format!(
                "data race between {} and {} on {}",
                mname(a),
                mname(b),
                set.object_name(*object)
            ),
            PredicateKind::MethodFails { site, kind } => {
                format!("{} throws {}", mname(site), kind)
            }
            PredicateKind::RunsTooSlow { site, threshold } => {
                format!("{} runs too slow (> {} ticks)", mname(site), threshold)
            }
            PredicateKind::RunsTooFast { site, threshold } => {
                format!("{} runs too fast (< {} ticks)", mname(site), threshold)
            }
            PredicateKind::WrongReturn { site, expected } => {
                format!("{} returns a value != {}", mname(site), expected)
            }
            PredicateKind::OrderViolation {
                first,
                second,
                object,
            } => match object {
                Some(o) => format!(
                    "use-after-free on {}: {} no longer precedes {}",
                    set.object_name(*o),
                    mname(first),
                    mname(second)
                ),
                None => format!("{} no longer precedes {}", mname(first), mname(second)),
            },
            PredicateKind::ValueCollision { a, b } => {
                format!("{} and {} return colliding values", mname(a), mname(b))
            }
            PredicateKind::Conjunction { lhs, rhs } => format!(
                "({}) AND ({})",
                self.describe(*lhs, set),
                self.describe(*rhs, set)
            ),
            PredicateKind::Failure { signature } => format!(
                "FAILURE {} in {}",
                signature.kind,
                set.method_name(signature.method)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mi(m: u32, i: u32) -> MethodInstance {
        MethodInstance::new(MethodId::from_raw(m), i)
    }

    #[test]
    fn catalog_dedupes_by_kind() {
        let mut c = PredicateCatalog::new();
        let p = Predicate {
            kind: PredicateKind::MethodFails {
                site: mi(0, 0),
                kind: "Boom".into(),
            },
            safe: true,
            action: None,
        };
        let a = c.insert(p.clone());
        let b = c.insert(p);
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn conjunction_combines_safety_and_actions() {
        let mut c = PredicateCatalog::new();
        let a = c.insert(Predicate {
            kind: PredicateKind::RunsTooSlow {
                site: mi(0, 0),
                threshold: 10,
            },
            safe: true,
            action: Some(InterventionAction::SuppressFlaky { site: mi(0, 0) }),
        });
        let b = c.insert(Predicate {
            kind: PredicateKind::MethodFails {
                site: mi(1, 0),
                kind: "X".into(),
            },
            safe: false,
            action: None,
        });
        let both = c.conjoin(a, b);
        let p = c.get(both);
        assert!(p.safe, "one intervenable safe conjunct suffices");
        assert!(matches!(
            p.action,
            Some(InterventionAction::SuppressFlaky { .. })
        ));
        // Conjunction is order-insensitive.
        assert_eq!(c.conjoin(b, a), both);
    }

    #[test]
    fn describe_renders_names() {
        let mut set = aid_trace::TraceSet::new();
        let m = set.method("Fetch");
        let o = set.object("cache");
        let mut c = PredicateCatalog::new();
        let id = c.insert(Predicate {
            kind: PredicateKind::DataRace {
                a: MethodInstance::new(m, 0),
                b: MethodInstance::new(m, 1),
                object: o,
            },
            safe: true,
            action: None,
        });
        let s = c.describe(id, &set);
        assert!(s.contains("Fetch#0") && s.contains("cache"), "{s}");
    }
}
