//! Runtime predicates: extraction, evaluation, and repair metadata.
//!
//! This crate turns raw execution traces (`aid-trace`) into the paper's
//! predicate logs: for every run, which predicates held and in which time
//! window. It implements the Figure 2 taxonomy (data races, method failures,
//! timing deviations, wrong returns) extended with order violations,
//! use-after-free attribution, value collisions, and compound (conjunction)
//! predicates, and it attaches to every predicate the fault-injection action
//! that repairs it.
//!
//! Predicate *design* is orthogonal to AID (§3.2): users can insert custom
//! predicates into a [`PredicateCatalog`] as long as they provide evaluation
//! semantics — the built-in kinds cover the paper's case studies.

pub mod eval;
pub mod extract;
pub mod model;

pub use eval::{evaluate, evaluate_extend, RunObservation, TraceIndex};
pub use extract::{
    extract, majority_signature, scan_failure, stable_orders, success_return_map, success_returns,
    success_stats, Extraction, ExtractionConfig, SuccessStats,
};
pub use model::{
    InterventionAction, MethodInstance, Predicate, PredicateCatalog, PredicateId, PredicateKind,
    PredicateTag,
};
