//! Two-pass predicate extraction from a labeled trace set.
//!
//! Pass 1 computes *successful-run statistics*: which method instances are
//! stable (present in every successful run), their duration envelopes
//! `[min, max]`, their unique return values, and the pairwise temporal
//! orders that hold in every successful run.
//!
//! Pass 2 walks the failed runs and materializes a predicate for every
//! deviation it can witness there (Figure 2's catalogue): data races, method
//! failures, too-slow/too-fast executions, wrong returns, order violations
//! (incl. use-after-free attribution), and value collisions. The failure
//! indicator F for the (majority) failure signature is added last.
//!
//! Everything is deterministic: runs are scanned in order, sites in
//! `(method, instance)` order, so predicate ids are stable across runs of
//! the pipeline.

use crate::eval::{evaluate, RunObservation};
use crate::model::{
    InterventionAction, MethodInstance, Predicate, PredicateCatalog, PredicateId, PredicateKind,
};
use aid_trace::{AccessKind, FailureSignature, MethodEvent, MethodId, Time, TraceSet};
use std::collections::{BTreeMap, BTreeSet};

/// Extraction tuning.
#[derive(Clone, Debug)]
pub struct ExtractionConfig {
    /// Methods whose return-value/premature-return interventions are safe
    /// (§3.3: developer-marked state-free methods).
    pub pure_methods: BTreeSet<MethodId>,
    /// If true, try/catch interventions are only considered safe on pure
    /// methods (the paper's strict reading); default allows them anywhere.
    pub catch_requires_pure: bool,
    /// Enable data-race predicates.
    pub data_races: bool,
    /// Enable method-failure predicates.
    pub method_fails: bool,
    /// Enable too-slow/too-fast predicates.
    pub timing: bool,
    /// Enable wrong-return predicates.
    pub wrong_return: bool,
    /// Enable order-violation predicates.
    pub order: bool,
    /// Enable value-collision predicates.
    pub collisions: bool,
    /// Safety cap on the number of materialized predicates.
    pub max_predicates: usize,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig {
            pure_methods: BTreeSet::new(),
            catch_requires_pure: false,
            data_races: true,
            method_fails: true,
            timing: true,
            wrong_return: true,
            order: true,
            collisions: true,
            max_predicates: 4096,
        }
    }
}

/// Output of extraction: the catalog, per-run observations, and the failure
/// indicator predicate.
#[derive(Clone, Debug)]
pub struct Extraction {
    /// All materialized predicates.
    pub catalog: PredicateCatalog,
    /// Per-run truth values/windows, in trace order.
    pub observations: Vec<RunObservation>,
    /// The failure predicate F.
    pub failure: PredicateId,
    /// The grouped failure signature F stands for.
    pub signature: FailureSignature,
}

/// Statistics over the successful runs (pass 1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuccessStats {
    /// Number of successful runs.
    pub successes: usize,
    /// Per stable site: `[min, max]` duration envelope.
    pub duration: BTreeMap<(u32, u32), (Time, Time)>,
    /// Per stable site: the unique return value, if one exists.
    pub unique_return: BTreeMap<(u32, u32), Option<i64>>,
    /// Stable sites (present in every successful run).
    pub stable: BTreeSet<(u32, u32)>,
}

fn key(e: &MethodEvent) -> (u32, u32) {
    (e.method.raw(), e.instance)
}

fn site_of(k: (u32, u32)) -> MethodInstance {
    MethodInstance::new(MethodId::from_raw(k.0), k.1)
}

/// Computes pass-1 statistics.
pub fn success_stats(set: &TraceSet) -> SuccessStats {
    let mut stats = SuccessStats::default();
    let mut presence: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for t in set.successes() {
        stats.successes += 1;
        for e in &t.events {
            let k = key(e);
            *presence.entry(k).or_insert(0) += 1;
            let d = e.duration();
            stats
                .duration
                .entry(k)
                .and_modify(|(lo, hi)| {
                    *lo = (*lo).min(d);
                    *hi = (*hi).max(d);
                })
                .or_insert((d, d));
            match stats.unique_return.entry(k) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(e.returned);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if *o.get() != e.returned {
                        o.insert(None);
                    }
                }
            }
        }
    }
    stats.stable = presence
        .iter()
        .filter(|(_, &c)| c == stats.successes && stats.successes > 0)
        .map(|(&k, _)| k)
        .collect();
    stats
}

/// The temporal orders that hold in **every** successful run, over stable
/// sites: `(a, b)` ∈ result iff `a.end < b.start` in each success.
pub fn stable_orders(set: &TraceSet, stats: &SuccessStats) -> BTreeSet<((u32, u32), (u32, u32))> {
    let stable: Vec<(u32, u32)> = stats.stable.iter().copied().collect();
    if stable.is_empty() {
        return BTreeSet::new();
    }
    let mut orders: Option<BTreeSet<((u32, u32), (u32, u32))>> = None;
    for t in set.successes() {
        let mut span: BTreeMap<(u32, u32), (Time, Time)> = BTreeMap::new();
        for e in &t.events {
            span.insert(key(e), (e.start, e.end));
        }
        let mut this: BTreeSet<((u32, u32), (u32, u32))> = BTreeSet::new();
        for (i, &a) in stable.iter().enumerate() {
            for &b in stable.iter().skip(i + 1) {
                let (sa, sb) = (span[&a], span[&b]);
                if sa.1 < sb.0 {
                    this.insert((a, b));
                } else if sb.1 < sa.0 {
                    this.insert((b, a));
                }
            }
        }
        orders = Some(match orders {
            None => this,
            Some(prev) => prev.intersection(&this).copied().collect(),
        });
    }
    orders.unwrap_or_default()
}

/// Per-success `site → returned value` maps, in trace order — the pass-1
/// auxiliary the collision extractor consults. A site is present iff the
/// run executed it *and* it returned a value.
pub fn success_returns(set: &TraceSet) -> Vec<BTreeMap<(u32, u32), i64>> {
    set.successes().map(success_return_map).collect()
}

/// The `site → returned value` map of one (successful) run.
pub fn success_return_map(t: &aid_trace::Trace) -> BTreeMap<(u32, u32), i64> {
    let mut m = BTreeMap::new();
    for e in &t.events {
        match e.returned {
            Some(v) => {
                m.insert(key(e), v);
            }
            // A later same-site event with no return value shadows an
            // earlier one, mirroring the batch scan's last-write-wins.
            None => {
                m.remove(&key(e));
            }
        }
    }
    m
}

/// Pass 2 over **one** failed run: materializes every predicate the run
/// witnesses into `catalog`, given the success statistics. [`extract`]
/// calls this per failure in trace order; incremental consumers
/// (`aid_store`) call it for newly arrived failures only — catalog interning
/// is insertion-ordered, so extending an existing catalog with a new
/// failure's scan is byte-identical to re-running the batch over all of
/// them, as long as `stats`/`orders`/`success_returns` are unchanged.
pub fn scan_failure(
    events: &[MethodEvent],
    config: &ExtractionConfig,
    stats: &SuccessStats,
    orders: &BTreeSet<((u32, u32), (u32, u32))>,
    success_returns: &[BTreeMap<(u32, u32), i64>],
    catalog: &mut PredicateCatalog,
) {
    // --- Method failures ---
    if config.method_fails {
        for e in events {
            if let Some(kind) = &e.exception {
                if !e.caught {
                    let s = site_of(key(e));
                    let pure = config.pure_methods.contains(&s.method);
                    catalog.insert(Predicate {
                        kind: PredicateKind::MethodFails {
                            site: s,
                            kind: kind.clone(),
                        },
                        safe: !config.catch_requires_pure || pure,
                        action: Some(InterventionAction::Catch { site: s }),
                    });
                }
            }
        }
    }
    // --- Timing deviations ---
    if config.timing {
        for e in events {
            let k = key(e);
            let Some(&(lo, hi)) = stats.duration.get(&k) else {
                continue;
            };
            let s = site_of(k);
            let d = e.duration();
            if d > hi {
                let pure = config.pure_methods.contains(&s.method);
                let action = match stats.unique_return.get(&k).copied().flatten() {
                    Some(v) if pure => InterventionAction::PrematureReturn { site: s, value: v },
                    _ => InterventionAction::SuppressFlaky { site: s },
                };
                catalog.insert(Predicate {
                    kind: PredicateKind::RunsTooSlow {
                        site: s,
                        threshold: hi,
                    },
                    safe: true,
                    action: Some(action),
                });
            }
            if d < lo {
                catalog.insert(Predicate {
                    kind: PredicateKind::RunsTooFast {
                        site: s,
                        threshold: lo,
                    },
                    safe: true,
                    action: Some(InterventionAction::SlowDown { site: s, ticks: lo }),
                });
            }
        }
    }
    // --- Wrong returns ---
    if config.wrong_return {
        for e in events {
            let k = key(e);
            let Some(Some(expected)) = stats.unique_return.get(&k) else {
                continue;
            };
            if let Some(v) = e.returned {
                if v != *expected {
                    let s = site_of(k);
                    let pure = config.pure_methods.contains(&s.method);
                    catalog.insert(Predicate {
                        kind: PredicateKind::WrongReturn {
                            site: s,
                            expected: *expected,
                        },
                        safe: pure,
                        action: pure.then_some(InterventionAction::ForceReturn {
                            site: s,
                            value: *expected,
                        }),
                    });
                }
            }
        }
    }
    // --- Data races ---
    if config.data_races {
        extract_races(events, catalog);
    }
    // --- Order violations (incl. use-after-free attribution) ---
    if config.order {
        let mut span: BTreeMap<(u32, u32), (Time, Time)> = BTreeMap::new();
        let mut touched: BTreeMap<(u32, u32), BTreeSet<u32>> = BTreeMap::new();
        for e in events {
            span.insert(key(e), (e.start, e.end));
            touched.insert(key(e), e.accesses.iter().map(|a| a.object.raw()).collect());
        }
        for &(a, b) in orders {
            let (Some(&sa), Some(&sb)) = (span.get(&a), span.get(&b)) else {
                continue;
            };
            // Violation: b no longer strictly after a.
            if sa.1 >= sb.0 {
                let common = touched
                    .get(&a)
                    .and_then(|ta| {
                        touched
                            .get(&b)
                            .and_then(|tb| ta.intersection(tb).next().copied())
                    })
                    .map(aid_trace::ObjectId::from_raw);
                let (first, second) = (site_of(a), site_of(b));
                catalog.insert(Predicate {
                    kind: PredicateKind::OrderViolation {
                        first,
                        second,
                        object: common,
                    },
                    safe: true,
                    action: Some(InterventionAction::ForceOrder { first, second }),
                });
            }
        }
    }
    // --- Value collisions ---
    if config.collisions {
        extract_collisions(events, stats, success_returns, catalog);
    }
}

/// Runs the full extraction.
pub fn extract(set: &TraceSet, config: &ExtractionConfig) -> Extraction {
    let stats = success_stats(set);
    let orders = if config.order {
        stable_orders(set, &stats)
    } else {
        BTreeSet::new()
    };
    let sreturns = success_returns(set);
    let mut catalog = PredicateCatalog::new();
    let signature = majority_signature(set).expect("extraction requires at least one failed run");

    for t in set.failures() {
        if catalog.len() >= config.max_predicates {
            break;
        }
        scan_failure(&t.events, config, &stats, &orders, &sreturns, &mut catalog);
    }

    // The failure indicator, last.
    let failure = catalog.insert(Predicate {
        kind: PredicateKind::Failure {
            signature: signature.clone(),
        },
        safe: true,
        action: None,
    });

    let observations = set.traces.iter().map(|t| evaluate(&catalog, t)).collect();

    Extraction {
        catalog,
        observations,
        failure,
        signature,
    }
}

/// Data races in one failed run: conflicting unlocked cross-thread access
/// pairs with the write inside the other execution's window.
fn extract_races(events: &[MethodEvent], catalog: &mut PredicateCatalog) {
    // Group (event index, access) by object.
    let mut by_object: BTreeMap<u32, Vec<(usize, usize)>> = BTreeMap::new();
    for (ei, e) in events.iter().enumerate() {
        for (ai, a) in e.accesses.iter().enumerate() {
            if !a.locked {
                by_object.entry(a.object.raw()).or_default().push((ei, ai));
            }
        }
    }
    for (obj, accs) in &by_object {
        for (i, &(e1, a1)) in accs.iter().enumerate() {
            for &(e2, a2) in accs.iter().skip(i + 1) {
                if e1 == e2 {
                    continue;
                }
                let (ev1, ev2) = (&events[e1], &events[e2]);
                if ev1.thread == ev2.thread {
                    continue;
                }
                let (x, y) = (&ev1.accesses[a1], &ev2.accesses[a2]);
                let conflicting = x.kind == AccessKind::Write || y.kind == AccessKind::Write;
                if !conflicting {
                    continue;
                }
                let write_in_window =
                    (x.kind == AccessKind::Write && ev2.start <= x.at && x.at <= ev2.end)
                        || (y.kind == AccessKind::Write && ev1.start <= y.at && y.at <= ev1.end);
                if !write_in_window {
                    continue;
                }
                let (sa, sb) = {
                    let s1 = site_of(key(ev1));
                    let s2 = site_of(key(ev2));
                    if (s1.method, s1.instance) <= (s2.method, s2.instance) {
                        (s1, s2)
                    } else {
                        (s2, s1)
                    }
                };
                catalog.insert(Predicate {
                    kind: PredicateKind::DataRace {
                        a: sa,
                        b: sb,
                        object: aid_trace::ObjectId::from_raw(*obj),
                    },
                    safe: true,
                    action: Some(InterventionAction::Serialize {
                        a: sa.method,
                        b: sb.method,
                    }),
                });
            }
        }
    }
}

/// Value collisions in one failed run: stable sites whose returns are equal
/// here but distinct in every successful run (consulted through the pass-1
/// [`success_returns`] maps).
fn extract_collisions(
    events: &[MethodEvent],
    stats: &SuccessStats,
    success_returns: &[BTreeMap<(u32, u32), i64>],
    catalog: &mut PredicateCatalog,
) {
    let returners: Vec<&MethodEvent> = events
        .iter()
        .filter(|e| e.returned.is_some() && stats.stable.contains(&key(e)))
        .collect();
    for (i, ea) in returners.iter().enumerate() {
        for eb in returners.iter().skip(i + 1) {
            if ea.returned != eb.returned {
                continue;
            }
            let (ka, kb) = (key(ea), key(eb));
            // Distinct in every success?
            let distinct_in_successes = success_returns
                .iter()
                .all(|m| matches!((m.get(&ka), m.get(&kb)), (Some(x), Some(y)) if x != y));
            if !distinct_in_successes {
                continue;
            }
            // Repair: pin BOTH draws to the (distinct) values of one
            // successful run; pinning one side would leave a residual
            // collision probability.
            let repair_values = success_returns.iter().find_map(|m| {
                match (m.get(&ka).copied(), m.get(&kb).copied()) {
                    (Some(x), Some(y)) if x != y => Some((x, y)),
                    _ => None,
                }
            });
            let (sa, sb) = (site_of(ka), site_of(kb));
            catalog.insert(Predicate {
                kind: PredicateKind::ValueCollision { a: sa, b: sb },
                safe: true,
                action: repair_values.map(|(a_value, b_value)| InterventionAction::ForceRandPair {
                    a: sa,
                    a_value,
                    b: sb,
                    b_value,
                }),
            });
        }
    }
}

/// The most common failure signature in the set (ties broken by order).
pub fn majority_signature(set: &TraceSet) -> Option<FailureSignature> {
    let mut counts: BTreeMap<FailureSignature, usize> = BTreeMap::new();
    for t in set.failures() {
        if let aid_trace::Outcome::Failure(sig) = &t.outcome {
            *counts.entry(sig.clone()).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|(_, c)| *c)
        .map(|(sig, _)| sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_trace::{Outcome, ThreadId, Trace};

    /// Builds a trace set by hand: two successes, one failure where method 1
    /// is slow, throws, and violates its order w.r.t. method 0.
    fn handmade() -> TraceSet {
        let mut set = TraceSet::new();
        let m0 = set.method("A");
        let m1 = set.method("B");
        let mk = |start: Time, end: Time, m: aid_trace::MethodId, ret: Option<i64>| MethodEvent {
            method: m,
            instance: 0,
            thread: ThreadId::from_raw(m.raw()),
            start,
            end,
            accesses: vec![],
            returned: ret,
            exception: None,
            caught: false,
        };
        for seed in 0..2 {
            let mut t = Trace {
                seed,
                events: vec![mk(0, 10, m0, Some(1)), mk(20, 30, m1, Some(2))],
                msgs: vec![],
                outcome: Outcome::Success,
                duration: 40,
            };
            t.normalize();
            set.push(t);
        }
        let mut bad_b = mk(5, 120, m1, Some(9)); // overlaps A, slow, wrong return
        bad_b.exception = Some("Crash".into());
        let mut t = Trace {
            seed: 9,
            events: vec![mk(0, 10, m0, Some(1)), bad_b],
            msgs: vec![],
            outcome: Outcome::Failure(FailureSignature {
                kind: "Crash".into(),
                method: m1,
            }),
            duration: 130,
        };
        t.normalize();
        set.push(t);
        set
    }

    #[test]
    fn extraction_materializes_expected_kinds() {
        let set = handmade();
        let ex = extract(&set, &ExtractionConfig::default());
        let kinds: Vec<_> = ex.catalog.iter().map(|(_, p)| &p.kind).collect();
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, PredicateKind::MethodFails { .. })),
            "{kinds:?}"
        );
        assert!(kinds
            .iter()
            .any(|k| matches!(k, PredicateKind::RunsTooSlow { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, PredicateKind::WrongReturn { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, PredicateKind::OrderViolation { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, PredicateKind::Failure { .. })));
        // Observations: failure predicate true exactly in the failed run.
        assert_eq!(ex.observations.len(), 3);
        assert!(!ex.observations[0].holds(ex.failure));
        assert!(!ex.observations[1].holds(ex.failure));
        assert!(ex.observations[2].holds(ex.failure));
    }

    #[test]
    fn stable_orders_require_consistency() {
        let set = handmade();
        let stats = success_stats(&set);
        assert_eq!(stats.successes, 2);
        let orders = stable_orders(&set, &stats);
        assert!(
            orders.contains(&((0, 0), (1, 0))),
            "A before B in all successes"
        );
    }

    #[test]
    fn wrong_return_unsafe_without_purity() {
        let set = handmade();
        let ex = extract(&set, &ExtractionConfig::default());
        let (_, p) = ex
            .catalog
            .iter()
            .find(|(_, p)| matches!(p.kind, PredicateKind::WrongReturn { .. }))
            .unwrap();
        assert!(!p.safe, "impure wrong-return interventions are unsafe");
        assert!(p.action.is_none());

        let mut cfg = ExtractionConfig::default();
        cfg.pure_methods.insert(MethodId::from_raw(1));
        let ex2 = extract(&set, &cfg);
        let (_, p2) = ex2
            .catalog
            .iter()
            .find(|(_, p)| matches!(p.kind, PredicateKind::WrongReturn { .. }))
            .unwrap();
        assert!(p2.safe);
        assert!(matches!(
            p2.action,
            Some(InterventionAction::ForceReturn { value: 2, .. })
        ));
    }

    #[test]
    fn majority_signature_picks_most_common() {
        let mut set = handmade();
        // Add two failures with a different signature: they win 2:1 against
        // the existing one? No — existing has 1, new has 2.
        let m0 = MethodId::from_raw(0);
        for seed in 100..102 {
            set.push(Trace {
                seed,
                events: vec![],
                msgs: vec![],
                outcome: Outcome::Failure(FailureSignature {
                    kind: "Other".into(),
                    method: m0,
                }),
                duration: 1,
            });
        }
        let sig = majority_signature(&set).unwrap();
        assert_eq!(sig.kind, "Other");
    }
}
