//! Search-space analysis (Section 6.1, Lemma 1, Example 3).
//!
//! A *valid solution* of Causal Path Discovery is a set of predicates that
//! can lie on one root-to-failure chain — i.e. a subset of nodes that is
//! pairwise comparable under the AC-DAG's reachability order (a chain of the
//! poset, including the empty set). Group testing by contrast considers all
//! `2^N` subsets. Counting chains exactly is a simple DP over the
//! transitive closure:
//!
//! ```text
//! C(v)  = 1 + Σ_{u ; v} C(u)        (chains ending at v)
//! W_CPD = 1 + Σ_v C(v)              (+1 for the empty set)
//! ```

use aid_util::DenseBitSet;

/// Number of chain-subsets (valid CPD solutions) of a DAG given its strict
/// transitive closure rows (`closure[i]` = descendants of `i`). Returns
/// `None` on `u128` overflow — use [`symmetric_cpd_search_space_log2`]-style
/// log-space forms for larger structures.
pub fn chain_count(closure: &[DenseBitSet]) -> Option<u128> {
    let n = closure.len();
    // Topological order: sort by ancestor count.
    let mut order: Vec<usize> = (0..n).collect();
    let anc = |i: usize| (0..n).filter(|&j| closure[j].contains(i)).count();
    order.sort_by_key(|&i| (anc(i), i));
    let mut ending: Vec<u128> = vec![0; n];
    for &v in &order {
        let mut c: u128 = 1;
        for u in 0..n {
            if closure[u].contains(v) {
                c = c.checked_add(ending[u])?;
            }
        }
        ending[v] = c;
    }
    let mut total: u128 = 1;
    for &e in &ending {
        total = total.checked_add(e)?;
    }
    Some(total)
}

/// `log₂` of the group-testing search space over `n` items: just `n`.
pub fn gt_search_space_log2(n: usize) -> f64 {
    n as f64
}

/// Lemma 1: horizontal expansion — parallel composition of two DAGs through
/// shared junctions. `W(G_H) = 1 + (W(G1) − 1) + (W(G2) − 1)`.
pub fn horizontal_expansion(w1: u128, w2: u128) -> u128 {
    1 + (w1 - 1) + (w2 - 1)
}

/// Lemma 1: vertical expansion — sequential composition. `W(G_V) = W(G1) ·
/// W(G2)`.
pub fn vertical_expansion(w1: u128, w2: u128) -> u128 {
    w1 * w2
}

/// CPD search space of the symmetric AC-DAG (Figure 5(c)): `J` junctions,
/// `B` branches each, `n` predicates per branch: `(B(2ⁿ−1)+1)^J`.
pub fn symmetric_cpd_search_space(j: u32, b: u32, n: u32) -> Option<u128> {
    let per_branch = 2u128.checked_pow(n)?.checked_sub(1)?;
    let per_junction = (b as u128).checked_mul(per_branch)?.checked_add(1)?;
    per_junction.checked_pow(j)
}

/// `log₂` of the symmetric CPD search space (overflow-safe).
pub fn symmetric_cpd_search_space_log2(j: u32, b: u32, n: u32) -> f64 {
    // log2((B(2^n - 1) + 1)^J) = J * log2(B(2^n-1)+1)
    let per_branch = (2f64.powi(n as i32) - 1.0).max(1.0);
    let per_junction = b as f64 * per_branch + 1.0;
    j as f64 * per_junction.log2()
}

/// GT search space of the symmetric AC-DAG: `2^(JBn)` (as log₂).
pub fn symmetric_gt_search_space_log2(j: u32, b: u32, n: u32) -> f64 {
    (j as u64 * b as u64 * n as u64) as f64
}

/// Brute-force chain-subset count for validation (n ≤ 20): enumerates all
/// subsets and keeps those pairwise comparable under reachability.
pub fn chain_count_brute(closure: &[DenseBitSet]) -> u128 {
    let n = closure.len();
    assert!(n <= 20, "brute force limited to 20 nodes");
    let comparable = |a: usize, b: usize| closure[a].contains(b) || closure[b].contains(a);
    let mut count: u128 = 0;
    for mask in 0u32..(1 << n) {
        let members: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let ok = members
            .iter()
            .enumerate()
            .all(|(k, &a)| members[k + 1..].iter().all(|&b| comparable(a, b)));
        if ok {
            count += 1;
        }
    }
    count
}

/// Builds closure rows from an edge list (test/analysis helper).
pub fn closure_from_edges(n: usize, edges: &[(usize, usize)]) -> Vec<DenseBitSet> {
    let mut c = vec![DenseBitSet::new(n); n];
    for &(a, b) in edges {
        c[a].insert(b);
    }
    for k in 0..n {
        for i in 0..n {
            if c[i].contains(k) {
                let row = c[k].clone();
                c[i].union_with(&row);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn chain_count_of_a_total_chain_is_2_pow_n() {
        let edges: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 1)).collect();
        let closure = closure_from_edges(6, &edges);
        assert_eq!(chain_count(&closure), Some(64));
    }

    #[test]
    fn example3_figure5a_is_15_vs_64() {
        // Two parallel 3-chains (A1→B1→C1, A2→B2→C2): CPD = 15, GT = 2^6.
        let edges = vec![(0, 1), (1, 2), (3, 4), (4, 5)];
        let closure = closure_from_edges(6, &edges);
        assert_eq!(chain_count(&closure), Some(15));
        assert_eq!(gt_search_space_log2(6), 6.0);
        // The symmetric formula agrees: J=1, B=2, n=3.
        assert_eq!(symmetric_cpd_search_space(1, 2, 3), Some(15));
    }

    #[test]
    fn lemma1_compositions() {
        // Horizontal: two 3-chains (W = 8 each) → 1 + 7 + 7 = 15.
        assert_eq!(horizontal_expansion(8, 8), 15);
        // Vertical: W multiplies.
        assert_eq!(vertical_expansion(8, 8), 64);
        // Symmetric DAG = vertical composition of J junction blocks.
        let per_junction = horizontal_expansion(8, 8);
        assert_eq!(
            symmetric_cpd_search_space(3, 2, 3),
            Some(per_junction.pow(3))
        );
    }

    #[test]
    fn log2_forms_match_exact_values() {
        for (j, b, n) in [(1u32, 2u32, 3u32), (2, 3, 2), (3, 2, 4)] {
            let exact = symmetric_cpd_search_space(j, b, n).unwrap() as f64;
            let log = symmetric_cpd_search_space_log2(j, b, n);
            assert!((exact.log2() - log).abs() < 1e-9);
        }
    }

    proptest! {
        /// The DP equals brute-force enumeration on random small DAGs.
        #[test]
        fn prop_dp_matches_brute_force(
            n in 1usize..9,
            edge_bits in proptest::collection::vec(any::<bool>(), 64),
        ) {
            // Random DAG: only forward edges i<j allowed.
            let mut edges = Vec::new();
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if edge_bits[k % edge_bits.len()] {
                        edges.push((i, j));
                    }
                    k += 1;
                }
            }
            let closure = closure_from_edges(n, &edges);
            prop_assert_eq!(chain_count(&closure).unwrap(), chain_count_brute(&closure));
        }

        /// Lemma 1 horizontal expansion agrees with the DP on two random
        /// chains composed in parallel.
        #[test]
        fn prop_horizontal_matches_dp(n1 in 1usize..6, n2 in 1usize..6) {
            let mut edges = Vec::new();
            for i in 0..n1.saturating_sub(1) {
                edges.push((i, i + 1));
            }
            for i in 0..n2.saturating_sub(1) {
                edges.push((n1 + i, n1 + i + 1));
            }
            let closure = closure_from_edges(n1 + n2, &edges);
            let expect = horizontal_expansion(1u128 << n1, 1u128 << n2);
            prop_assert_eq!(chain_count(&closure).unwrap(), expect);
        }
    }
}
