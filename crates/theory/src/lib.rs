//! Theoretical analysis of AID vs. group testing (Section 6).
//!
//! * [`search`] — search-space sizes: the chain-subset DP for arbitrary
//!   AC-DAGs, Lemma 1's horizontal/vertical expansion, and the symmetric
//!   AC-DAG closed forms (`(B(2ⁿ−1)+1)^J` vs `2^(JBn)`, Example 3's 15 vs 64).
//! * [`bounds`] — information-theoretic lower bounds (Theorem 2), pruning
//!   upper bounds (Theorem 3), branch-pruning bounds (§6.3.1), and the full
//!   Figure 6 table row.

pub mod bounds;
pub mod search;

pub use bounds::{
    aid_branch_upper_bound, aid_pruning_upper_bound, cpd_lower_bound, figure6_row, gt_lower_bound,
    log2_binomial, tagt_branch_upper_bound, tagt_upper_bound, Figure6Row,
};
pub use search::{
    chain_count, chain_count_brute, closure_from_edges, gt_search_space_log2, horizontal_expansion,
    symmetric_cpd_search_space, symmetric_cpd_search_space_log2, symmetric_gt_search_space_log2,
    vertical_expansion,
};
