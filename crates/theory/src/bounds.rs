//! Intervention-count bounds (Sections 6.2–6.3, Theorems 2–3, Figure 6).

/// `log₂ C(n, d)` computed stably in log space.
pub fn log2_binomial(n: u64, d: u64) -> f64 {
    if d > n {
        return f64::NEG_INFINITY;
    }
    let d = d.min(n - d);
    let mut acc = 0.0f64;
    for i in 0..d {
        acc += ((n - i) as f64).log2() - ((i + 1) as f64).log2();
    }
    acc
}

/// Group testing's information-theoretic lower bound: `log₂ C(N, D)`.
pub fn gt_lower_bound(n: u64, d: u64) -> f64 {
    log2_binomial(n, d)
}

/// Theorem 2: CPD's lower bound when every group intervention discards at
/// least `s1` predicates: `N / (N + D·S1) · log₂ C(N, D)`.
pub fn cpd_lower_bound(n: u64, d: u64, s1: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    (n as f64 / (n as f64 + (d * s1) as f64)) * log2_binomial(n, d)
}

/// TAGT's classic upper bound `D·log₂ N` (Section 2, "a trivial upper bound
/// for adaptive group testing").
pub fn tagt_upper_bound(n: u64, d: u64) -> f64 {
    if n == 0 || d == 0 {
        return 0.0;
    }
    d as f64 * (n as f64).log2()
}

/// Theorem 3: AID's upper bound under predicate pruning, when every causal
/// predicate discovery discards at least `s2` predicates:
/// `D·log₂N − D(D−1)·S2 / (2N)`.
pub fn aid_pruning_upper_bound(n: u64, d: u64, s2: u64) -> f64 {
    if n == 0 || d == 0 {
        return 0.0;
    }
    tagt_upper_bound(n, d) - (d * (d - 1) * s2) as f64 / (2.0 * n as f64)
}

/// §6.3.1: AID's upper bound with branch pruning on a DAG with `j`
/// junctions, at most `t` branches per junction (bounded by thread count),
/// and a longest path of `nm` predicates: `J·log₂T + D·log₂ N_M`.
pub fn aid_branch_upper_bound(j: u64, t: u64, nm: u64, d: u64) -> f64 {
    let jt = if t > 1 {
        j as f64 * (t as f64).log2()
    } else {
        0.0
    };
    let dn = if nm > 1 {
        d as f64 * (nm as f64).log2()
    } else {
        0.0
    };
    jt + dn
}

/// §6.3.1: TAGT on the same DAG explores the full `T·N_M` universe:
/// `D·log₂ T + D·log₂ N_M`.
pub fn tagt_branch_upper_bound(t: u64, nm: u64, d: u64) -> f64 {
    if t * nm <= 1 || d == 0 {
        return 0.0;
    }
    d as f64 * ((t * nm) as f64).log2()
}

/// One row of the Figure 6 table for the symmetric AC-DAG with `J`
/// junctions, `B` branches per junction, `n` predicates per branch, `D`
/// causal predicates, and pruning yields `s1`/`s2`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Figure6Row {
    /// log₂ of the CPD search space.
    pub cpd_search_log2: f64,
    /// log₂ of the GT search space.
    pub gt_search_log2: f64,
    /// CPD lower bound on interventions.
    pub cpd_lower: f64,
    /// GT lower bound on interventions.
    pub gt_lower: f64,
    /// AID upper bound: `J·log₂B + D·log₂(Jn) − D(D−1)S2/(2Jn)`.
    pub aid_upper: f64,
    /// TAGT upper bound: `D·log₂B + D·log₂(Jn) − D(D−1)/(2JBn)`.
    pub tagt_upper: f64,
}

/// Computes the Figure 6 row.
pub fn figure6_row(j: u64, b: u64, n: u64, d: u64, s1: u64, s2: u64) -> Figure6Row {
    let total = j * b * n;
    let jn = (j * n) as f64;
    let aid_upper = if b > 1 {
        j as f64 * (b as f64).log2()
    } else {
        0.0
    } + d as f64 * jn.log2()
        - (d * (d - 1) * s2) as f64 / (2.0 * jn);
    let tagt_upper = if b > 1 {
        d as f64 * (b as f64).log2()
    } else {
        0.0
    } + d as f64 * jn.log2()
        - (d * (d - 1)) as f64 / (2.0 * total as f64);
    Figure6Row {
        cpd_search_log2: crate::search::symmetric_cpd_search_space_log2(
            j as u32, b as u32, n as u32,
        ),
        gt_search_log2: total as f64,
        cpd_lower: cpd_lower_bound(total, d, s1),
        gt_lower: gt_lower_bound(total, d),
        aid_upper,
        tagt_upper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn log2_binomial_exact_small_cases() {
        assert!((log2_binomial(14, 3) - 364f64.log2()).abs() < 1e-9);
        assert_eq!(log2_binomial(5, 0), 0.0);
        assert!((log2_binomial(6, 3) - 20f64.log2()).abs() < 1e-9);
        assert_eq!(log2_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn cpd_lower_bound_is_below_gt() {
        for (n, d, s1) in [(64u64, 4u64, 2u64), (128, 8, 4), (284, 20, 1)] {
            assert!(cpd_lower_bound(n, d, s1) < gt_lower_bound(n, d));
        }
        // S1 = 0 degenerates to the GT bound.
        assert!((cpd_lower_bound(64, 4, 0) - gt_lower_bound(64, 4)).abs() < 1e-12);
    }

    #[test]
    fn aid_upper_bound_below_tagt_when_j_below_d() {
        // §6.3.1: whenever J < D, AID's branch bound beats TAGT's.
        let (j, t, nm, d) = (2u64, 8u64, 32u64, 5u64);
        assert!(j < d);
        assert!(aid_branch_upper_bound(j, t, nm, d) < tagt_branch_upper_bound(t, nm, d));
    }

    #[test]
    fn figure6_row_orders_bounds_sanely() {
        let r = figure6_row(3, 4, 8, 4, 2, 2);
        assert!(r.cpd_search_log2 < r.gt_search_log2);
        assert!(r.cpd_lower <= r.gt_lower);
        assert!(r.aid_upper < r.tagt_upper);
        assert!(r.gt_lower <= r.tagt_upper);
    }

    proptest! {
        #[test]
        fn prop_pruning_tightens_upper_bound(
            n in 8u64..512,
            d in 1u64..8,
            s2 in 0u64..16,
        ) {
            prop_assume!(d < n);
            let with = aid_pruning_upper_bound(n, d, s2);
            let without = tagt_upper_bound(n, d);
            prop_assert!(with <= without + 1e-12);
            // More pruning, tighter bound.
            prop_assert!(aid_pruning_upper_bound(n, d, s2 + 1) <= with + 1e-12);
        }

        #[test]
        fn prop_lower_bounds_monotone_in_s1(
            n in 8u64..512,
            d in 1u64..8,
            s1 in 0u64..16,
        ) {
            prop_assume!(d < n);
            let a = cpd_lower_bound(n, d, s1);
            let b = cpd_lower_bound(n, d, s1 + 1);
            prop_assert!(b <= a + 1e-12, "lower bound decreases as pruning grows");
        }
    }
}
